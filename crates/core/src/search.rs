//! Region-allocation search (paper §IV-C, Fig. 6).
//!
//! For each *candidate partition set* the search starts from the
//! one-region-per-partition assignment — the static-equivalent solution
//! with zero reconfiguration time and maximal area — and explores two move
//! kinds:
//!
//! * **merge** two compatible regions into one (paper: "two compatible
//!   base partitions are assigned to the same region"), shrinking area to
//!   the element-wise maximum (Eq. 2) at the cost of coupling their
//!   transitions;
//! * **promote** a region into the static logic ("moving modes into the
//!   static region when possible"), eliminating its transitions at the
//!   cost of implementing all its partitions concurrently.
//!
//! Every state encountered is evaluated (Eqs. 7–10) and the best feasible
//! scheme — lowest total reconfiguration time, ties broken on area — is
//! retained. The default [`SearchStrategy::GreedyRestarts`] follows the
//! paper's iteration scheme: a greedy descent restarted from each distinct
//! first move, repeated over successive candidate partition sets obtained
//! by head-dropping the base-partition list. [`SearchStrategy::Beam`] and
//! [`SearchStrategy::Exhaustive`] are labelled extensions used for quality
//! cross-checks and ablation (DESIGN.md A1).

use crate::cluster::{generate_base_partitions, DEFAULT_CLIQUE_LIMIT};
use crate::covering::CandidateSets;
use crate::error::PartitionError;
use crate::feasibility::check_feasibility;
use crate::partition::BasePartition;
use crate::scheme::{EvaluatedScheme, Region, Scheme, TransitionSemantics};
use crate::weights::TransitionWeights;
use prpart_arch::{frames_for, Resources, TileCounts};
use prpart_design::{ConnectivityMatrix, Design};
use prpart_graph::BitSet;
use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};

/// What the search minimises.
///
/// The paper optimises the total over all configuration pairs (Eq. 10)
/// and *reports* the worst case (Eq. 11), noting that "in some
/// applications, such as real time systems and safety critical systems,
/// the system cannot tolerate reconfiguration time beyond a certain
/// limit". [`Objective::WorstCase`] lets the search minimise that limit
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Total reconfiguration time over all configuration pairs (Eq. 10)
    /// — the paper's objective.
    #[default]
    TotalTime,
    /// The largest single transition (Eq. 11) — for real-time systems
    /// with per-transition deadlines.
    WorstCase,
}

/// How the region-allocation space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The paper's scheme: greedy descent with restarts over the first
    /// merge choice, across successive candidate partition sets.
    GreedyRestarts {
        /// Candidate partition sets to explore (head-drops of the list).
        max_candidate_sets: usize,
        /// Distinct first moves to restart from per candidate set.
        max_first_moves: usize,
    },
    /// Beam search over assignment states (extension, ablation A1).
    Beam {
        /// Beam width.
        width: usize,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
    /// Simulated annealing over merge/split/promote/demote moves — the
    /// approach of the paper's related work \[7\] (Montone et al.), provided
    /// as a comparator (ablation A1). Deterministic per seed.
    Annealing {
        /// Proposal iterations per candidate set.
        iterations: usize,
        /// RNG seed.
        seed: u64,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
    /// Exhaustive enumeration of all compatible groupings with greedy
    /// post-hoc static promotion (oracle for small designs).
    Exhaustive {
        /// Refuse pools larger than this (the state space is Bell-number
        /// sized).
        max_partitions: usize,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::GreedyRestarts { max_candidate_sets: 6, max_first_moves: 32 }
    }
}

/// The partitioning engine: budget, cost semantics and search strategy.
///
/// ```
/// use prpart_arch::Resources;
/// use prpart_core::Partitioner;
/// use prpart_design::corpus;
///
/// let design = corpus::video_receiver(corpus::VideoConfigSet::Original);
/// let outcome = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
///     .partition(&design)
///     .unwrap();
/// let best = outcome.best.expect("the case study is feasible");
/// assert!(best.metrics.fits);
/// assert!(best.metrics.total_frames < 300_000);
/// println!("{}", best.scheme.describe(&design));
/// ```
#[derive(Debug, Clone)]
pub struct Partitioner {
    /// Available reconfigurable resources (device capacity or explicit
    /// budget).
    pub budget: Resources,
    /// Don't-care transition accounting (DESIGN.md §5).
    pub semantics: TransitionSemantics,
    /// Search strategy.
    pub strategy: SearchStrategy,
    /// Clique budget for clustering.
    pub clique_limit: usize,
    /// Whether regions may be promoted into static logic (ablation A2).
    pub allow_static_promotion: bool,
    /// Optional transition-probability weights (the paper's future-work
    /// extension): when set, the search minimises the *weighted* total
    /// reconfiguration cost instead of the all-pairs Eq. 10 sum.
    pub transition_weights: Option<TransitionWeights>,
    /// What to minimise (total time by default; worst case for real-time
    /// deadlines). Weights apply only to the total-time objective.
    pub objective: Objective,
}

impl Partitioner {
    /// Creates a partitioner with the paper-faithful defaults.
    pub fn new(budget: Resources) -> Self {
        Partitioner {
            budget,
            semantics: TransitionSemantics::default(),
            strategy: SearchStrategy::default(),
            clique_limit: DEFAULT_CLIQUE_LIMIT,
            allow_static_promotion: true,
            transition_weights: None,
            objective: Objective::TotalTime,
        }
    }

    /// Replaces the search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the transition semantics.
    pub fn with_semantics(mut self, semantics: TransitionSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Disables static promotion (ablation A2).
    pub fn without_static_promotion(mut self) -> Self {
        self.allow_static_promotion = false;
        self
    }

    /// Optimises the weighted transition cost instead of the uniform
    /// all-pairs total (paper future work; see [`crate::weights`]).
    pub fn with_transition_weights(mut self, weights: TransitionWeights) -> Self {
        self.transition_weights = Some(weights);
        self
    }

    /// Minimises the worst single transition (Eq. 11) instead of the
    /// all-pairs total — for real-time deadlines.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Re-partitions an edited design, seeding the search with the
    /// grouping of a previous scheme (matched by module/mode *names*, so
    /// the two designs may differ structurally). The normal pipeline
    /// runs as well; the better result wins — so the seed can only help.
    /// Useful in the iterate-edit-repartition loop of a real tool, where
    /// scheme stability across small edits matters.
    pub fn repartition(
        &self,
        design: &Design,
        previous_design: &Design,
        previous: &Scheme,
    ) -> Result<PartitionOutcome, PartitionError> {
        let mut outcome = self.partition(design)?;
        let matrix = ConnectivityMatrix::from_design(design);

        // Translate the previous scheme's partitions into the new design.
        let translate = |p: &BasePartition| -> Option<BasePartition> {
            let modes: Vec<_> = p
                .modes
                .iter()
                .filter_map(|&m| {
                    let label = previous_design.mode_label(m);
                    let mut it = label.splitn(2, '.');
                    design.mode_id(it.next()?, it.next()?)
                })
                .collect();
            if modes.is_empty() {
                return None;
            }
            let candidate = BasePartition::from_modes(design, &matrix, modes);
            // Multi-mode groups must still co-occur somewhere.
            if candidate.num_modes() > 1 && matrix.support(&candidate.modes) == 0 {
                None
            } else {
                Some(candidate)
            }
        };

        // Seed pool: translated partitions, grouped as before where still
        // compatible, plus singletons for any uncovered mode.
        let mut pool: Vec<BasePartition> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut statics: Vec<usize> = Vec::new();
        for region in &previous.regions {
            let mut members: Vec<usize> = Vec::new();
            for &pi in &region.partitions {
                if let Some(part) = translate(&previous.partitions[pi]) {
                    // Keep in this region only if compatible with the
                    // members already there; otherwise it opens its own.
                    let compatible = members.iter().all(|&m| pool[m].compatible_with(&part));
                    pool.push(part);
                    if compatible {
                        members.push(pool.len() - 1);
                    } else {
                        groups.push(vec![pool.len() - 1]);
                    }
                }
            }
            if !members.is_empty() {
                groups.push(members);
            }
        }
        for &pi in &previous.static_partitions {
            if let Some(part) = translate(&previous.partitions[pi]) {
                pool.push(part);
                statics.push(pool.len() - 1);
            }
        }
        // Cover modes the previous scheme does not know about.
        let mut covered = vec![false; design.num_modes()];
        for p in &pool {
            for m in &p.modes {
                covered[m.idx()] = true;
            }
        }
        for m in 0..design.num_modes() {
            let g = prpart_design::GlobalModeId(m as u32);
            if !covered[m] && matrix.node_weight(g) > 0 {
                pool.push(BasePartition::from_modes(design, &matrix, vec![g]));
                groups.push(vec![pool.len() - 1]);
            }
        }

        let ctx = Ctx {
            pool: &pool,
            num_configs: design.num_configurations(),
            budget: self.budget,
            overhead: design.static_overhead(),
            semantics: self.semantics,
            allow_static: self.allow_static_promotion,
            weights: self.transition_weights.as_ref(),
            objective: self.objective,
        };
        let mut seeded = State {
            groups: groups.iter().map(|g| Group::new(&ctx, g.clone())).collect(),
            statics: statics.clone(),
            static_res: statics.iter().map(|&p| pool[p].resources).sum(),
            time: 0.0,
            area: Resources::ZERO,
        };
        seeded.recompute_totals(&ctx);
        let mut best = Best::new();
        let mut stats = SearchStats::default();
        greedy_descent(&ctx, seeded, &mut best, &mut stats);
        outcome.states_evaluated += stats.states_evaluated;
        let (seeded_best, seeded_front) = best.into_evaluated(design, &self.budget, self.semantics);
        if let Some(sb) = seeded_best {
            let better = match &outcome.best {
                None => true,
                Some(ob) => {
                    sb.metrics.total_frames < ob.metrics.total_frames
                        || (sb.metrics.total_frames == ob.metrics.total_frames
                            && sb.metrics.resources.total_primitives()
                                < ob.metrics.resources.total_primitives())
                }
            };
            if better {
                outcome.best = Some(sb);
                outcome.pareto_front = seeded_front;
            }
        }
        Ok(outcome)
    }

    /// Runs the full pipeline: feasibility → clustering → covering →
    /// region allocation. Returns the best feasible scheme found (if any)
    /// and search statistics.
    pub fn partition(&self, design: &Design) -> Result<PartitionOutcome, PartitionError> {
        check_feasibility(design, &self.budget)?;
        if let Some(w) = &self.transition_weights {
            if w.num_configurations() != design.num_configurations() {
                return Err(PartitionError::WeightsDimension {
                    expected: design.num_configurations(),
                    got: w.num_configurations(),
                });
            }
        }
        let matrix = ConnectivityMatrix::from_design(design);
        let parts = generate_base_partitions(design, &matrix, self.clique_limit)?;
        let (max_sets, runner): (usize, Runner) = match self.strategy {
            SearchStrategy::GreedyRestarts { max_candidate_sets, max_first_moves } => {
                (max_candidate_sets, Runner::Greedy { max_first_moves })
            }
            SearchStrategy::Beam { width, max_candidate_sets } => {
                (max_candidate_sets, Runner::Beam { width })
            }
            SearchStrategy::Annealing { iterations, seed, max_candidate_sets } => {
                (max_candidate_sets, Runner::Annealing { iterations, seed })
            }
            SearchStrategy::Exhaustive { max_partitions, max_candidate_sets } => {
                (max_candidate_sets, Runner::Exhaustive { max_partitions })
            }
        };
        let mut best = Best::new();
        let mut stats = SearchStats::default();
        for set in CandidateSets::new(&matrix, &parts).take(max_sets.max(1)) {
            stats.candidate_sets_explored += 1;
            let pool: Vec<BasePartition> = set.iter().map(|&i| parts[i].clone()).collect();
            let ctx = Ctx {
                pool: &pool,
                num_configs: design.num_configurations(),
                budget: self.budget,
                overhead: design.static_overhead(),
                semantics: self.semantics,
                allow_static: self.allow_static_promotion,
                weights: self.transition_weights.as_ref(),
                objective: self.objective,
            };
            let initial = State::initial(&ctx);
            match runner {
                Runner::Greedy { max_first_moves } => {
                    greedy_restarts(&ctx, initial, max_first_moves, &mut best, &mut stats)
                }
                Runner::Beam { width } => beam(&ctx, initial, width, &mut best, &mut stats),
                Runner::Annealing { iterations, seed } => {
                    annealing(&ctx, initial, iterations, seed, &mut best, &mut stats)
                }
                Runner::Exhaustive { max_partitions } => {
                    if pool.len() <= max_partitions {
                        exhaustive(&ctx, &mut best, &mut stats);
                    } else {
                        // Pool too large for the oracle; fall back to a
                        // plain greedy descent so the call still returns a
                        // result.
                        greedy_restarts(&ctx, initial, 1, &mut best, &mut stats);
                    }
                }
            }
        }
        let (best, pareto_front) = best.into_evaluated(design, &self.budget, self.semantics);
        Ok(PartitionOutcome {
            best,
            pareto_front,
            candidate_sets_explored: stats.candidate_sets_explored,
            states_evaluated: stats.states_evaluated,
        })
    }
}

#[derive(Clone, Copy)]
enum Runner {
    Greedy { max_first_moves: usize },
    Beam { width: usize },
    Annealing { iterations: usize, seed: u64 },
    Exhaustive { max_partitions: usize },
}

/// Result of a [`Partitioner::partition`] run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Best feasible scheme found, evaluated. `None` when no explored
    /// state fits the budget (the caller should escalate the device;
    /// see [`crate::device_select`]).
    pub best: Option<EvaluatedScheme>,
    /// The time/area Pareto front over all feasible states explored:
    /// schemes none of which is dominated (lower-or-equal total time
    /// *and* area) by another, sorted by ascending total time. The best
    /// scheme is its first element. Useful when the designer wants to
    /// trade reconfiguration time against device headroom.
    pub pareto_front: Vec<EvaluatedScheme>,
    /// Candidate partition sets explored.
    pub candidate_sets_explored: usize,
    /// Assignment states evaluated across all runs.
    pub states_evaluated: u64,
}

#[derive(Default)]
struct SearchStats {
    candidate_sets_explored: usize,
    states_evaluated: u64,
}

/// Shared search context for one candidate partition set.
struct Ctx<'a> {
    pool: &'a [BasePartition],
    num_configs: usize,
    budget: Resources,
    overhead: Resources,
    semantics: TransitionSemantics,
    allow_static: bool,
    weights: Option<&'a TransitionWeights>,
    objective: Objective,
}

/// One region in a search state, with cached cost components.
#[derive(Clone)]
struct Group {
    members: Vec<usize>,
    /// Union of member presence masks (regions are mergeable iff their
    /// masks are disjoint).
    mask: BitSet,
    /// Tile-quantised capacity of the element-wise max of member
    /// resources (Eqs. 2–5).
    cap: Resources,
    /// Frames to reconfigure (Eq. 6).
    frames: u64,
    /// Reconfiguring pair mass: the number of unordered configuration
    /// pairs in which this region reconfigures (uniform), or their
    /// weighted sum when transition weights are in force.
    mass: f64,
    /// Sum of raw member resources — the cost of promoting to static.
    raw_sum: Resources,
}

impl Group {
    fn new(ctx: &Ctx<'_>, members: Vec<usize>) -> Group {
        let mut mask = BitSet::new(ctx.num_configs);
        let mut res = Resources::ZERO;
        let mut raw_sum = Resources::ZERO;
        for &p in &members {
            mask.union_with(&ctx.pool[p].presence);
            res = res.max(ctx.pool[p].resources);
            raw_sum += ctx.pool[p].resources;
        }
        let tiles = TileCounts::for_resources(&res);
        let frames = tiles.frames();
        let mass = Group::differing_mass(ctx, &members);
        Group { members, mask, cap: tiles.capacity(), frames, mass, raw_sum }
    }

    /// Mass of configuration pairs between which this region's state
    /// differs. Because member presence masks are disjoint, the uniform
    /// case reduces to counting from each member's presence count; the
    /// weighted case sums pair weights over the mask structure.
    fn differing_mass(ctx: &Ctx<'_>, members: &[usize]) -> f64 {
        match ctx.weights {
            None => {
                let choose2 = |n: u64| n * n.saturating_sub(1) / 2;
                let c = ctx.num_configs as u64;
                let mut active = 0u64;
                let mut same = 0u64;
                for &p in members {
                    let n = ctx.pool[p].presence.len() as u64;
                    active += n;
                    same += choose2(n);
                }
                (match ctx.semantics {
                    TransitionSemantics::Optimistic => choose2(active) - same,
                    TransitionSemantics::Pessimistic => choose2(c) - same - choose2(c - active),
                }) as f64
            }
            Some(w) => {
                // mass(S) = sum of pair weights within configuration set S.
                let mass_of = |s: &[usize]| -> f64 {
                    let mut m = 0.0;
                    for (a, &i) in s.iter().enumerate() {
                        for &j in &s[a + 1..] {
                            m += w.get(i, j);
                        }
                    }
                    m
                };
                let mut active: Vec<usize> = Vec::new();
                let mut within = 0.0;
                for &p in members {
                    let s: Vec<usize> = ctx.pool[p].presence.iter().collect();
                    within += mass_of(&s);
                    active.extend(s);
                }
                active.sort_unstable();
                match ctx.semantics {
                    TransitionSemantics::Optimistic => mass_of(&active) - within,
                    TransitionSemantics::Pessimistic => {
                        let none: Vec<usize> = (0..ctx.num_configs)
                            .filter(|c| active.binary_search(c).is_err())
                            .collect();
                        w.total_mass() - within - mass_of(&none)
                    }
                }
            }
        }
    }

    fn merged(ctx: &Ctx<'_>, a: &Group, b: &Group) -> Group {
        let mut members = a.members.clone();
        members.extend_from_slice(&b.members);
        Group::new(ctx, members)
    }

    fn time(&self) -> f64 {
        self.mass * self.frames as f64
    }
}

/// One assignment state: regions plus static promotions, with cached
/// totals.
#[derive(Clone)]
struct State {
    groups: Vec<Group>,
    statics: Vec<usize>,
    static_res: Resources,
    /// Total reconfiguration cost: frames (Eq. 10) under uniform
    /// weights, weighted frame mass otherwise.
    time: f64,
    /// Total resource requirement including static overhead.
    area: Resources,
}

impl State {
    fn initial(ctx: &Ctx<'_>) -> State {
        let groups: Vec<Group> = (0..ctx.pool.len()).map(|p| Group::new(ctx, vec![p])).collect();
        let mut s = State {
            groups,
            statics: Vec::new(),
            static_res: Resources::ZERO,
            time: 0.0,
            area: Resources::ZERO,
        };
        s.recompute_totals(ctx);
        s
    }

    fn recompute_totals(&mut self, ctx: &Ctx<'_>) {
        self.time = match ctx.objective {
            Objective::TotalTime => self.groups.iter().map(Group::time).sum(),
            Objective::WorstCase => worst_case_of_groups(ctx, &self.groups),
        };
        self.area =
            self.groups.iter().map(|g| g.cap).sum::<Resources>() + self.static_res + ctx.overhead;
    }

    fn fits(&self, budget: &Resources) -> bool {
        self.area.fits_in(budget)
    }

    fn apply(&self, ctx: &Ctx<'_>, mv: Move) -> State {
        let mut next = self.clone();
        match mv {
            Move::Merge(i, j) => {
                debug_assert!(i < j);
                let merged = Group::merged(ctx, &next.groups[i], &next.groups[j]);
                next.groups.swap_remove(j);
                next.groups[i] = merged;
            }
            Move::Promote(i) => {
                let g = next.groups.swap_remove(i);
                next.statics.extend_from_slice(&g.members);
                next.static_res += g.raw_sum;
            }
        }
        next.recompute_totals(ctx);
        next
    }

    /// Predicted `(area, time)` after a move, without materialising it.
    /// Under the worst-case objective the per-pair maximum is not
    /// decomposable, so the candidate group set is evaluated directly.
    fn preview(&self, ctx: &Ctx<'_>, mv: Move) -> (Resources, f64) {
        match (ctx.objective, mv) {
            (Objective::TotalTime, Move::Merge(i, j)) => {
                let merged = Group::merged(ctx, &self.groups[i], &self.groups[j]);
                let area = self.area - self.groups[i].cap - self.groups[j].cap + merged.cap;
                let time =
                    self.time - self.groups[i].time() - self.groups[j].time() + merged.time();
                (area, time)
            }
            (Objective::TotalTime, Move::Promote(i)) => {
                let area = self.area - self.groups[i].cap + self.groups[i].raw_sum;
                let time = self.time - self.groups[i].time();
                (area, time)
            }
            (Objective::WorstCase, mv) => {
                let next = self.apply(ctx, mv);
                (next.area, next.time)
            }
        }
    }

    fn moves(&self, ctx: &Ctx<'_>) -> Vec<Move> {
        let mut out = Vec::new();
        for i in 0..self.groups.len() {
            for j in i + 1..self.groups.len() {
                if self.groups[i].mask.is_disjoint(&self.groups[j].mask) {
                    out.push(Move::Merge(i, j));
                }
            }
        }
        if ctx.allow_static {
            for i in 0..self.groups.len() {
                out.push(Move::Promote(i));
            }
        }
        out
    }

    fn to_scheme(&self, ctx: &Ctx<'_>) -> Scheme {
        Scheme {
            partitions: ctx.pool.to_vec(),
            regions: self.groups.iter().map(|g| Region { partitions: g.members.clone() }).collect(),
            static_partitions: self.statics.clone(),
            num_configurations: ctx.num_configs,
        }
    }

    /// A structural signature for beam-search deduplication.
    fn signature(&self) -> u64 {
        let mut groups: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| {
                let mut m = g.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        groups.sort();
        let mut statics = self.statics.clone();
        statics.sort_unstable();
        let mut h = DefaultHasher::new();
        groups.hash(&mut h);
        statics.hash(&mut h);
        h.finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Merge groups `i` and `j` (`i < j`).
    Merge(usize, usize),
    /// Promote group `i` to static logic.
    Promote(usize),
}

/// Worst single transition over a group set (Eq. 11): accumulates each
/// group's frames into every configuration pair whose state differs,
/// then takes the maximum. O(pairs x groups); used only under
/// [`Objective::WorstCase`].
fn worst_case_of_groups(ctx: &Ctx<'_>, groups: &[Group]) -> f64 {
    let c = ctx.num_configs;
    if c < 2 {
        return 0.0;
    }
    let npairs = c * (c - 1) / 2;
    let pair_index = |i: usize, j: usize| -> usize {
        // i < j
        i * c - i * (i + 1) / 2 + (j - i - 1)
    };
    let mut per_pair = vec![0u64; npairs];
    for g in groups {
        if g.frames == 0 {
            continue;
        }
        // Region state per configuration from the member presence masks.
        let mut state = vec![usize::MAX; c];
        for (k, &p) in g.members.iter().enumerate() {
            for ci in ctx.pool[p].presence.iter() {
                state[ci] = k;
            }
        }
        for i in 0..c {
            for j in i + 1..c {
                let reconfigures = match ctx.semantics {
                    TransitionSemantics::Optimistic => {
                        state[i] != usize::MAX && state[j] != usize::MAX && state[i] != state[j]
                    }
                    // Pessimistic: only same-state pairs (including both
                    // don't-care) are free.
                    TransitionSemantics::Pessimistic => state[i] != state[j],
                };
                if reconfigures {
                    per_pair[pair_index(i, j)] += g.frames;
                }
            }
        }
    }
    per_pair.into_iter().max().unwrap_or(0) as f64
}

/// Comparison key: feasible states first (ordered by time, then area),
/// infeasible states ordered by how far over budget they are (so greedy
/// descends towards feasibility fastest), then time. Ordered by
/// `f64::total_cmp` so weighted costs sort deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(u8, f64, f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.total_cmp(&other.1)).then(self.2.total_cmp(&other.2))
    }
}

fn state_key(area: Resources, time: f64, budget: &Resources) -> Key {
    if area.fits_in(budget) {
        Key(0, time, area.total_primitives() as f64)
    } else {
        let overflow = frames_for(&area.saturating_sub(*budget));
        Key(1, overflow as f64, time)
    }
}

/// Cap on retained Pareto points (they rarely exceed a handful).
const PARETO_CAP: usize = 32;

/// Best-so-far tracker across candidate sets, including the time/area
/// Pareto front of feasible states.
struct Best {
    scheme: Option<Scheme>,
    time: f64,
    area: u64,
    /// Non-dominated (time, area, scheme) points.
    pareto: Vec<(f64, u64, Scheme)>,
}

impl Best {
    fn new() -> Best {
        Best { scheme: None, time: f64::INFINITY, area: u64::MAX, pareto: Vec::new() }
    }

    fn consider(&mut self, ctx: &Ctx<'_>, state: &State) {
        if !state.fits(&ctx.budget) {
            return;
        }
        let area = state.area.total_primitives();
        if self.scheme.is_none()
            || state.time < self.time
            || (state.time == self.time && area < self.area)
        {
            self.scheme = Some(state.to_scheme(ctx));
            self.time = state.time;
            self.area = area;
        }
        // Pareto maintenance: drop if dominated; evict what it dominates.
        let dominated = self
            .pareto
            .iter()
            .any(|(t, a, _)| *t <= state.time && *a <= area && (*t < state.time || *a < area));
        if !dominated && !self.pareto.iter().any(|(t, a, _)| *t == state.time && *a == area) {
            self.pareto.retain(|(t, a, _)| !(state.time <= *t && area <= *a));
            if self.pareto.len() < PARETO_CAP {
                self.pareto.push((state.time, area, state.to_scheme(ctx)));
            }
        }
    }

    fn into_evaluated(
        self,
        design: &Design,
        budget: &Resources,
        semantics: TransitionSemantics,
    ) -> (Option<EvaluatedScheme>, Vec<EvaluatedScheme>) {
        let eval = |scheme: Scheme| {
            let metrics = scheme.metrics(design.static_overhead(), budget, semantics);
            debug_assert!(metrics.fits);
            EvaluatedScheme { scheme, metrics }
        };
        let mut pareto = self.pareto;
        pareto.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let front: Vec<EvaluatedScheme> = pareto.into_iter().map(|(_, _, s)| eval(s)).collect();
        (self.scheme.map(eval), front)
    }
}

/// Greedy descent from `state`, evaluating every state along the path.
fn greedy_descent(ctx: &Ctx<'_>, mut state: State, best: &mut Best, stats: &mut SearchStats) {
    loop {
        stats.states_evaluated += 1;
        best.consider(ctx, &state);
        let moves = state.moves(ctx);
        if moves.is_empty() {
            break;
        }
        let scored = moves.into_iter().map(|m| {
            let (area, time) = state.preview(ctx, m);
            (state_key(area, time, &ctx.budget), m)
        });
        let (key, mv) = scored.min_by(|(a, _), (b, _)| a.cmp(b)).expect("non-empty");
        // Once feasible, stop when no move strictly improves time.
        if state.fits(&ctx.budget) && (key.0 != 0 || key.1 >= state.time) {
            break;
        }
        state = state.apply(ctx, mv);
    }
}

/// The paper's restart scheme: one descent per distinct first move, best
/// first moves tried first.
fn greedy_restarts(
    ctx: &Ctx<'_>,
    initial: State,
    max_first_moves: usize,
    best: &mut Best,
    stats: &mut SearchStats,
) {
    stats.states_evaluated += 1;
    best.consider(ctx, &initial);
    let mut scored: Vec<(Key, Move)> = initial
        .moves(ctx)
        .into_iter()
        .map(|m| {
            let (area, time) = initial.preview(ctx, m);
            (state_key(area, time, &ctx.budget), m)
        })
        .collect();
    scored.sort_by_key(|&(k, _)| k);
    for (_, mv) in scored.into_iter().take(max_first_moves.max(1)) {
        greedy_descent(ctx, initial.apply(ctx, mv), best, stats);
    }
}

/// Beam search (extension).
fn beam(ctx: &Ctx<'_>, initial: State, width: usize, best: &mut Best, stats: &mut SearchStats) {
    let width = width.max(1);
    stats.states_evaluated += 1;
    best.consider(ctx, &initial);
    let mut frontier = vec![initial];
    let max_depth = ctx.pool.len() + 1;
    let mut seen: HashSet<u64> = HashSet::new();
    for _ in 0..max_depth {
        let mut children: Vec<(State, Key)> = Vec::new();
        for s in &frontier {
            for mv in s.moves(ctx) {
                let child = s.apply(ctx, mv);
                if !seen.insert(child.signature()) {
                    continue;
                }
                stats.states_evaluated += 1;
                best.consider(ctx, &child);
                let key = state_key(child.area, child.time, &ctx.budget);
                children.push((child, key));
            }
        }
        if children.is_empty() {
            break;
        }
        children.sort_by_key(|&(_, k)| k);
        children.truncate(width);
        frontier = children.into_iter().map(|(s, _)| s).collect();
    }
}

/// Scalar energy for annealing: total time plus a large penalty per
/// overflow frame so feasibility dominates.
fn energy(state: &State, budget: &Resources) -> f64 {
    let overflow = frames_for(&state.area.saturating_sub(*budget)) as f64;
    state.time + overflow * 1e4
}

/// Simulated annealing (comparator, paper related work [7]): random
/// merge / split / promote / demote proposals under a geometric cooling
/// schedule. Deterministic per seed.
fn annealing(
    ctx: &Ctx<'_>,
    initial: State,
    iterations: usize,
    seed: u64,
    best: &mut Best,
    stats: &mut SearchStats,
) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = initial;
    stats.states_evaluated += 1;
    best.consider(ctx, &state);

    let e0 = energy(&state, &ctx.budget).max(1.0);
    let t_start = e0 * 0.05;
    let t_end = e0 * 1e-5;
    let iterations = iterations.max(1);
    let decay = (t_end / t_start).powf(1.0 / iterations as f64);
    let mut temperature = t_start;

    for _ in 0..iterations {
        temperature *= decay;
        let proposal: Option<State> = match rng.random_range(0u8..4) {
            // Merge a random compatible pair.
            0 => {
                let pairs: Vec<(usize, usize)> = (0..state.groups.len())
                    .flat_map(|i| ((i + 1)..state.groups.len()).map(move |j| (i, j)))
                    .filter(|&(i, j)| state.groups[i].mask.is_disjoint(&state.groups[j].mask))
                    .collect();
                if pairs.is_empty() {
                    None
                } else {
                    let (i, j) = pairs[rng.random_range(0..pairs.len())];
                    Some(state.apply(ctx, Move::Merge(i, j)))
                }
            }
            // Promote a random region to static.
            1 if ctx.allow_static && !state.groups.is_empty() => {
                let i = rng.random_range(0..state.groups.len());
                Some(state.apply(ctx, Move::Promote(i)))
            }
            // Demote a random static partition back to its own region.
            2 if !state.statics.is_empty() => {
                let k = rng.random_range(0..state.statics.len());
                let mut next = state.clone();
                let p = next.statics.swap_remove(k);
                next.static_res = next.static_res.saturating_sub(ctx.pool[p].resources);
                next.groups.push(Group::new(ctx, vec![p]));
                next.recompute_totals(ctx);
                Some(next)
            }
            // Split a random multi-partition region in two.
            _ => {
                let splittable: Vec<usize> = (0..state.groups.len())
                    .filter(|&i| state.groups[i].members.len() >= 2)
                    .collect();
                if splittable.is_empty() {
                    None
                } else {
                    let gi = splittable[rng.random_range(0..splittable.len())];
                    let members = state.groups[gi].members.clone();
                    let cut = rng.random_range(1..members.len());
                    let mut next = state.clone();
                    next.groups.swap_remove(gi);
                    next.groups.push(Group::new(ctx, members[..cut].to_vec()));
                    next.groups.push(Group::new(ctx, members[cut..].to_vec()));
                    next.recompute_totals(ctx);
                    Some(next)
                }
            }
        };
        let Some(candidate) = proposal else { continue };
        stats.states_evaluated += 1;
        let de = energy(&candidate, &ctx.budget) - energy(&state, &ctx.budget);
        let accept = de <= 0.0 || rng.random_range(0.0..1.0) < (-de / temperature).exp();
        if accept {
            best.consider(ctx, &candidate);
            state = candidate;
        }
    }
}

/// Exhaustive oracle: restricted-growth enumeration of all compatible
/// groupings, each followed by greedy static promotion.
fn exhaustive(ctx: &Ctx<'_>, best: &mut Best, stats: &mut SearchStats) {
    let n = ctx.pool.len();
    let mut assignment: Vec<Vec<usize>> = Vec::new();
    rec(ctx, 0, n, &mut assignment, best, stats);

    fn rec(
        ctx: &Ctx<'_>,
        idx: usize,
        n: usize,
        groups: &mut Vec<Vec<usize>>,
        best: &mut Best,
        stats: &mut SearchStats,
    ) {
        if idx == n {
            let state = build_state(ctx, groups);
            stats.states_evaluated += 1;
            best.consider(ctx, &state);
            if ctx.allow_static {
                promote_greedily(ctx, state, best, stats);
            }
            return;
        }
        for g in 0..groups.len() {
            let ok = groups[g].iter().all(|&p| ctx.pool[p].compatible_with(&ctx.pool[idx]));
            if ok {
                groups[g].push(idx);
                rec(ctx, idx + 1, n, groups, best, stats);
                groups[g].pop();
            }
        }
        groups.push(vec![idx]);
        rec(ctx, idx + 1, n, groups, best, stats);
        groups.pop();
    }

    fn build_state(ctx: &Ctx<'_>, groups: &[Vec<usize>]) -> State {
        let gs: Vec<Group> = groups.iter().map(|g| Group::new(ctx, g.clone())).collect();
        let mut s = State {
            groups: gs,
            statics: Vec::new(),
            static_res: Resources::ZERO,
            time: 0.0,
            area: Resources::ZERO,
        };
        s.recompute_totals(ctx);
        s
    }

    /// Promote regions one at a time while it helps: prefer promotions
    /// that reduce time and keep the state feasible (or reduce overflow).
    fn promote_greedily(ctx: &Ctx<'_>, mut state: State, best: &mut Best, stats: &mut SearchStats) {
        loop {
            let mut improved = false;
            let mut best_mv: Option<(Key, Move)> = None;
            for i in 0..state.groups.len() {
                let mv = Move::Promote(i);
                let (area, time) = state.preview(ctx, mv);
                let key = state_key(area, time, &ctx.budget);
                if key < state_key(state.area, state.time, &ctx.budget)
                    && best_mv.as_ref().is_none_or(|(k, _)| key < *k)
                {
                    best_mv = Some((key, mv));
                }
            }
            if let Some((_, mv)) = best_mv {
                state = state.apply(ctx, mv);
                stats.states_evaluated += 1;
                best.consider(ctx, &state);
                improved = true;
            }
            if !improved {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_design::corpus;

    fn abc_budget() -> Resources {
        // Tight enough that the fully separate assignment (~1710 CLBs /
        // 24 BRAMs / 32 DSPs in tiles) does not fit, loose enough that a
        // per-module-style grouping (~1050 / 20 / 24) does.
        Resources::new(1100, 20, 24)
    }

    #[test]
    fn abc_partition_finds_a_feasible_scheme() {
        let d = corpus::abc_example();
        let out = Partitioner::new(abc_budget()).partition(&d).unwrap();
        let best = out.best.expect("a feasible scheme exists");
        assert!(best.metrics.fits);
        best.scheme.validate(&d).unwrap();
        assert!(out.states_evaluated > 0);
        assert!(out.candidate_sets_explored >= 1);
    }

    #[test]
    fn infeasible_budget_errors_up_front() {
        let d = corpus::abc_example();
        let err = Partitioner::new(Resources::new(10, 0, 0)).partition(&d).unwrap_err();
        assert!(matches!(err, PartitionError::Infeasible { .. }));
    }

    #[test]
    fn huge_budget_recovers_static_equivalent() {
        // With unconstrained area the best scheme is the zero-time
        // starting point (or a static promotion of it).
        let d = corpus::abc_example();
        let out = Partitioner::new(Resources::new(100_000, 1_000, 1_000)).partition(&d).unwrap();
        let best = out.best.unwrap();
        assert_eq!(best.metrics.total_frames, 0);
    }

    #[test]
    fn proposed_beats_or_matches_baselines_on_case_study() {
        // Table IV: the proposed scheme's total reconfiguration time is
        // below the one-module-per-region baseline and far below the
        // single-region scheme.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let out = Partitioner::new(budget).partition(&d).unwrap();
        let best = out.best.expect("case study is feasible");
        best.scheme.validate(&d).unwrap();

        let matrix = ConnectivityMatrix::from_design(&d);
        let base = crate::baselines::evaluate_baselines(
            &d,
            &matrix,
            &budget,
            TransitionSemantics::Optimistic,
        );
        assert!(
            best.metrics.total_frames <= base.per_module.metrics.total_frames,
            "proposed {} vs per-module {}",
            best.metrics.total_frames,
            base.per_module.metrics.total_frames
        );
        assert!(best.metrics.total_frames < base.single_region.metrics.total_frames);
        assert!(best.metrics.resources.fits_in(&budget));
    }

    #[test]
    fn modified_configs_use_static_promotion() {
        // Table V's solution moves modes into the static region; with
        // promotion enabled the search must do at least as well as
        // without.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Modified);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let with = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let without = Partitioner::new(budget)
            .without_static_promotion()
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert!(with.metrics.total_frames <= without.metrics.total_frames);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_design() {
        let d = corpus::abc_example();
        let budget = abc_budget();
        let greedy = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let exact = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Exhaustive { max_partitions: 10, max_candidate_sets: 3 })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        // The oracle can only be better or equal.
        assert!(exact.metrics.total_frames <= greedy.metrics.total_frames);
        // And greedy should be within a small factor on this toy design.
        assert!(greedy.metrics.total_frames <= exact.metrics.total_frames.max(1) * 3);
    }

    #[test]
    fn beam_is_no_worse_than_plain_greedy_descent() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let narrow = Partitioner::new(budget)
            .with_strategy(SearchStrategy::GreedyRestarts {
                max_candidate_sets: 1,
                max_first_moves: 1,
            })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        let beam = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Beam { width: 8, max_candidate_sets: 1 })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert!(beam.metrics.total_frames <= narrow.metrics.total_frames);
    }

    #[test]
    fn worst_case_objective_reduces_worst_frames() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let by_total = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let by_worst = Partitioner::new(budget)
            .with_objective(Objective::WorstCase)
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        by_worst.scheme.validate(&d).unwrap();
        assert!(
            by_worst.metrics.worst_frames <= by_total.metrics.worst_frames,
            "worst-case search {} vs total-time search {}",
            by_worst.metrics.worst_frames,
            by_total.metrics.worst_frames
        );
        // The trade-off is real: the worst-case optimum may pay more
        // total time, but never more worst case.
    }

    #[test]
    fn worst_case_objective_on_degenerate_design_is_zero() {
        use prpart_design::DesignBuilder;
        let d = DesignBuilder::new("mono")
            .module("A", [("a", Resources::new(50, 0, 0))])
            .module("B", [("b", Resources::new(60, 0, 0))])
            .configuration("only", [("A", "a"), ("B", "b")])
            .build()
            .unwrap();
        let best = Partitioner::new(Resources::new(300, 8, 8))
            .with_objective(Objective::WorstCase)
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert_eq!(best.metrics.worst_frames, 0);
    }

    #[test]
    fn repartition_on_identical_design_is_no_worse() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let p = Partitioner::new(budget);
        let fresh = p.partition(&d).unwrap().best.unwrap();
        let again = p.repartition(&d, &d, &fresh.scheme).unwrap().best.unwrap();
        assert!(again.metrics.total_frames <= fresh.metrics.total_frames);
        again.scheme.validate(&d).unwrap();
    }

    #[test]
    fn repartition_survives_design_edits() {
        use prpart_design::DesignBuilder;
        // Original: the case study. Edited: the Video module loses JPEG
        // and gains a new AV1 mode; one configuration changes.
        let original = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let previous = Partitioner::new(budget).partition(&original).unwrap().best.unwrap().scheme;

        let mut b = DesignBuilder::new("video-edited");
        for m in original.modules() {
            let modes: Vec<(&str, prpart_arch::Resources)> = m
                .modes
                .iter()
                .filter(|k| k.name != "JPEG")
                .map(|k| (k.name.as_str(), k.resources))
                .collect();
            if m.name == "Video" {
                let mut modes = modes;
                modes.push(("AV1", prpart_arch::Resources::new(3500, 24, 40)));
                b = b.module(&m.name, modes);
            } else {
                b = b.module(&m.name, modes);
            }
        }
        for (ci, conf) in original.configurations().iter().enumerate() {
            let picks: Vec<(String, String)> = conf
                .selection
                .iter()
                .enumerate()
                .filter_map(|(mi, sel)| {
                    sel.map(|ki| {
                        let module = &original.modules()[mi];
                        let mode = &module.modes[ki as usize].name;
                        let mode = if mode == "JPEG" { "AV1" } else { mode };
                        (module.name.clone(), mode.to_string())
                    })
                })
                .collect();
            let refs: Vec<(&str, &str)> =
                picks.iter().map(|(a, c)| (a.as_str(), c.as_str())).collect();
            b = b.configuration(&format!("c{ci}"), refs);
        }
        let edited = b.build().unwrap();

        let p = Partitioner::new(budget);
        let re = p.repartition(&edited, &original, &previous).unwrap().best.unwrap();
        re.scheme.validate(&edited).unwrap();
        // And never worse than partitioning from scratch (the fresh
        // pipeline also runs inside repartition).
        let fresh = p.partition(&edited).unwrap().best.unwrap();
        assert!(re.metrics.total_frames <= fresh.metrics.total_frames);
    }

    #[test]
    fn annealing_finds_feasible_schemes() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let sa = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Annealing {
                iterations: 4000,
                seed: 7,
                max_candidate_sets: 2,
            })
            .partition(&d)
            .unwrap();
        let best = sa.best.expect("annealing finds a feasible scheme");
        best.scheme.validate(&d).unwrap();
        // Within 25% of the greedy result (it is a comparator, not the
        // production strategy).
        let greedy = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        assert!(
            best.metrics.total_frames <= greedy.metrics.total_frames * 5 / 4,
            "annealing {} vs greedy {}",
            best.metrics.total_frames,
            greedy.metrics.total_frames
        );
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let d = corpus::abc_example();
        let budget = abc_budget();
        let run = |seed| {
            Partitioner::new(budget)
                .with_strategy(SearchStrategy::Annealing {
                    iterations: 1500,
                    seed,
                    max_candidate_sets: 1,
                })
                .partition(&d)
                .unwrap()
                .best
                .map(|b| b.metrics.total_frames)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn outcome_schemes_always_validate() {
        for set in [corpus::VideoConfigSet::Original, corpus::VideoConfigSet::Modified] {
            let d = corpus::video_receiver(set);
            let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
            if let Some(best) = out.best {
                best.scheme.validate(&d).unwrap();
                assert!(best.metrics.fits);
            }
        }
    }

    #[test]
    fn pareto_front_is_nondominated_and_contains_best() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
        let best = out.best.unwrap();
        let front = &out.pareto_front;
        assert!(!front.is_empty());
        // Sorted by ascending time; the head is the best scheme.
        assert_eq!(front[0].metrics.total_frames, best.metrics.total_frames);
        for w in front.windows(2) {
            assert!(w[0].metrics.total_frames <= w[1].metrics.total_frames);
            // Later points pay more time, so they must save area.
            assert!(
                w[1].metrics.resources.total_primitives()
                    < w[0].metrics.resources.total_primitives()
                    || w[1].metrics.total_frames == w[0].metrics.total_frames
            );
        }
        // No point dominates another.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dom = a.metrics.total_frames <= b.metrics.total_frames
                        && a.metrics.resources.total_primitives()
                            <= b.metrics.resources.total_primitives()
                        && (a.metrics.total_frames < b.metrics.total_frames
                            || a.metrics.resources.total_primitives()
                                < b.metrics.resources.total_primitives());
                    assert!(!dom, "front point {i} dominates {j}");
                }
            }
        }
        for p in front {
            p.scheme.validate(&d).unwrap();
        }
    }

    #[test]
    fn uniform_weights_match_unweighted_search() {
        // With all-ones weights the weighted objective is exactly Eq. 10,
        // so the search must find a scheme of the same total cost.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let plain = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let weighted = Partitioner::new(budget)
            .with_transition_weights(crate::weights::TransitionWeights::uniform(
                d.num_configurations(),
            ))
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert_eq!(plain.metrics.total_frames, weighted.metrics.total_frames);
    }

    #[test]
    fn skewed_weights_change_the_objective() {
        // Weight one transition overwhelmingly: the weighted-optimal
        // scheme must make that transition at least as cheap as the
        // unweighted optimum does.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let n = d.num_configurations();
        let mut w = crate::weights::TransitionWeights::zero(n);
        for i in 0..n {
            for j in i + 1..n {
                w.set(i, j, 0.01);
            }
        }
        // The expensive hop in the case study: c1 (V1) -> c3 (V3).
        w.set(0, 2, 1000.0);
        let plain = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let weighted = Partitioner::new(budget)
            .with_transition_weights(w.clone())
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        let sem = TransitionSemantics::Optimistic;
        let plain_obj = plain.scheme.weighted_total(&w, sem);
        let weighted_obj = weighted.scheme.weighted_total(&w, sem);
        assert!(
            weighted_obj <= plain_obj + 1e-9,
            "weighted search ({weighted_obj}) must not lose to plain ({plain_obj}) on its own objective"
        );
    }

    #[test]
    fn wrong_weight_dimension_is_rejected() {
        let d = corpus::abc_example();
        let err = Partitioner::new(abc_budget())
            .with_transition_weights(crate::weights::TransitionWeights::uniform(3))
            .partition(&d)
            .unwrap_err();
        assert!(matches!(err, PartitionError::WeightsDimension { expected: 5, got: 3 }));
    }

    #[test]
    fn special_case_design_partitions() {
        let d = corpus::special_case_single_mode();
        // Budget that cannot hold every module in its own region
        // (~2050 CLBs) but admits cross-configuration sharing (~1350).
        let budget = Resources::new(1400, 16, 24);
        let out = Partitioner::new(budget).partition(&d).unwrap();
        let best = out.best.expect("feasible");
        best.scheme.validate(&d).unwrap();
        assert!(best.metrics.resources.fits_in(&budget));
    }
}
