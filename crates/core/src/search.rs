//! Region-allocation search (paper §IV-C, Fig. 6).
//!
//! For each *candidate partition set* the search starts from the
//! one-region-per-partition assignment — the static-equivalent solution
//! with zero reconfiguration time and maximal area — and explores two move
//! kinds:
//!
//! * **merge** two compatible regions into one (paper: "two compatible
//!   base partitions are assigned to the same region"), shrinking area to
//!   the element-wise maximum (Eq. 2) at the cost of coupling their
//!   transitions;
//! * **promote** a region into the static logic ("moving modes into the
//!   static region when possible"), eliminating its transitions at the
//!   cost of implementing all its partitions concurrently.
//!
//! Every state encountered is evaluated (Eqs. 7–10) and the best feasible
//! scheme — lowest total reconfiguration time, ties broken on area — is
//! retained. The default [`SearchStrategy::GreedyRestarts`] follows the
//! paper's iteration scheme: a greedy descent restarted from each distinct
//! first move, repeated over successive candidate partition sets obtained
//! by head-dropping the base-partition list. [`SearchStrategy::Beam`] and
//! [`SearchStrategy::Exhaustive`] are labelled extensions used for quality
//! cross-checks and ablation (DESIGN.md A1).
//!
//! # Parallel execution
//!
//! The search decomposes into an ordered list of independent *units*
//! (candidate sets, further split into restart chunks for the greedy
//! strategy). Units are distributed over worker threads via an atomic
//! work-stealing counter; each unit produces its own [`Best`] and
//! statistics, and the per-unit results are reduced **in unit order**, so
//! the merged outcome is byte-identical regardless of thread count — the
//! sequential path runs the very same units through the very same
//! reduction. [`Partitioner::with_threads`] (surfaced as `--threads` on
//! the CLI) selects the worker count; `0` means one worker per available
//! core.
//!
//! # Incremental evaluation
//!
//! Greedy descent mutates a single [`State`] in place via an undo stack
//! ([`State::apply_mut`] / [`State::undo`]) instead of cloning per move,
//! and merged-group costs are memoised in a per-unit transposition table
//! keyed by the merged member list ([`Ctx::merged`]). Two pruning rules
//! skip redundant work without changing any output: greedy descents
//! within a restart chunk share a visited-state set and stop the moment
//! they reach a state an earlier restart already walked (the
//! continuation is a pure function of the state, so the rest would be an
//! exact replay), and beam search declines to expand children dominated
//! on both area and time by its Pareto archive.

use crate::audit::AuditorHandle;
use crate::budget::{BudgetClock, SearchBudget, SearchOutcome};
use crate::checkpoint::{
    self, CheckpointConfig, CheckpointWriter, Fnv64, LoadedCheckpoint, SchemePoint, SchemeShape,
    UnitSnapshot,
};
use crate::cluster::{generate_base_partitions, DEFAULT_CLIQUE_LIMIT};
use crate::covering::CandidateSets;
use crate::error::PartitionError;
use crate::feasibility::check_feasibility;
use crate::partition::BasePartition;
use crate::scheme::{EvaluatedScheme, Region, Scheme, TransitionSemantics};
use crate::weights::TransitionWeights;
use parking_lot::Mutex;
use prpart_arch::{frames_for, Resources, TileCounts};
use prpart_design::{ConnectivityMatrix, Design};
use prpart_graph::BitSet;
use prpart_obs::{Counter, Gauge, Histogram, ObsHandle};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What the search minimises.
///
/// The paper optimises the total over all configuration pairs (Eq. 10)
/// and *reports* the worst case (Eq. 11), noting that "in some
/// applications, such as real time systems and safety critical systems,
/// the system cannot tolerate reconfiguration time beyond a certain
/// limit". [`Objective::WorstCase`] lets the search minimise that limit
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Total reconfiguration time over all configuration pairs (Eq. 10)
    /// — the paper's objective.
    #[default]
    TotalTime,
    /// The largest single transition (Eq. 11) — for real-time systems
    /// with per-transition deadlines.
    WorstCase,
}

/// How the region-allocation space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The paper's scheme: greedy descent with restarts over the first
    /// merge choice, across successive candidate partition sets.
    GreedyRestarts {
        /// Candidate partition sets to explore (head-drops of the list).
        max_candidate_sets: usize,
        /// Distinct first moves to restart from per candidate set.
        max_first_moves: usize,
    },
    /// Beam search over assignment states (extension, ablation A1).
    Beam {
        /// Beam width.
        width: usize,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
    /// Simulated annealing over merge/split/promote/demote moves — the
    /// approach of the paper's related work \[7\] (Montone et al.), provided
    /// as a comparator (ablation A1). Deterministic per seed.
    Annealing {
        /// Proposal iterations per candidate set.
        iterations: usize,
        /// RNG seed.
        seed: u64,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
    /// Exhaustive enumeration of all compatible groupings with greedy
    /// post-hoc static promotion (oracle for small designs).
    Exhaustive {
        /// Refuse pools larger than this (the state space is Bell-number
        /// sized).
        max_partitions: usize,
        /// Candidate partition sets to explore.
        max_candidate_sets: usize,
    },
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::GreedyRestarts { max_candidate_sets: 6, max_first_moves: 32 }
    }
}

/// The partitioning engine: budget, cost semantics and search strategy.
///
/// ```
/// use prpart_arch::Resources;
/// use prpart_core::Partitioner;
/// use prpart_design::corpus;
///
/// let design = corpus::video_receiver(corpus::VideoConfigSet::Original);
/// let outcome = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
///     .partition(&design)
///     .unwrap();
/// let best = outcome.best.expect("the case study is feasible");
/// assert!(best.metrics.fits);
/// assert!(best.metrics.total_frames < 300_000);
/// println!("{}", best.scheme.describe(&design));
/// ```
#[derive(Debug, Clone)]
pub struct Partitioner {
    /// Available reconfigurable resources (device capacity or explicit
    /// budget).
    pub budget: Resources,
    /// Don't-care transition accounting (DESIGN.md §5).
    pub semantics: TransitionSemantics,
    /// Search strategy.
    pub strategy: SearchStrategy,
    /// Clique budget for clustering.
    pub clique_limit: usize,
    /// Whether regions may be promoted into static logic (ablation A2).
    pub allow_static_promotion: bool,
    /// Optional transition-probability weights (the paper's future-work
    /// extension): when set, the search minimises the *weighted* total
    /// reconfiguration cost instead of the all-pairs Eq. 10 sum.
    pub transition_weights: Option<TransitionWeights>,
    /// What to minimise (total time by default; worst case for real-time
    /// deadlines). Weights apply only to the total-time objective.
    pub objective: Objective,
    /// Worker threads for the search (`0` = one per available core).
    /// Results are independent of this setting: the per-unit results are
    /// reduced in a fixed order, so any thread count yields byte-identical
    /// output.
    pub threads: usize,
    /// Optional independent result verifier (see [`crate::audit`]). When
    /// installed, every final answer is certified before being returned
    /// (release builds) and every accepted search state is certified as
    /// it is accepted (debug builds).
    pub auditor: Option<AuditorHandle>,
    /// Cooperative limits on the search (unlimited by default). An
    /// exhausted budget is not an error: the best-so-far scheme is
    /// returned with [`PartitionOutcome::search_outcome`] recording why
    /// the sweep stopped. See [`crate::budget`].
    pub search_budget: SearchBudget,
    /// Optional checkpointing of completed work units (see
    /// [`crate::checkpoint`] and [`Partitioner::resume_from`]).
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault-injection hook for tests: work units whose index is listed
    /// here panic at the start of execution, exercising the per-unit
    /// panic isolation without touching the search code itself.
    pub injected_unit_panics: Vec<usize>,
    /// Observability sink (disabled by default). When disabled every
    /// instrumented point is a no-op — no clock reads, no atomics — so
    /// the search behaves byte-identically to an un-instrumented build.
    pub obs: ObsHandle,
}

impl Partitioner {
    /// Creates a partitioner with the paper-faithful defaults.
    pub fn new(budget: Resources) -> Self {
        Partitioner {
            budget,
            semantics: TransitionSemantics::default(),
            strategy: SearchStrategy::default(),
            clique_limit: DEFAULT_CLIQUE_LIMIT,
            allow_static_promotion: true,
            transition_weights: None,
            objective: Objective::TotalTime,
            threads: 0,
            auditor: None,
            search_budget: SearchBudget::default(),
            checkpoint: None,
            injected_unit_panics: Vec::new(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Installs an observability sink; search-side counters, span
    /// timings and budget-poll latencies are recorded through it.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the transition semantics.
    pub fn with_semantics(mut self, semantics: TransitionSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Disables static promotion (ablation A2).
    pub fn without_static_promotion(mut self) -> Self {
        self.allow_static_promotion = false;
        self
    }

    /// Optimises the weighted transition cost instead of the uniform
    /// all-pairs total (paper future work; see [`crate::weights`]).
    pub fn with_transition_weights(mut self, weights: TransitionWeights) -> Self {
        self.transition_weights = Some(weights);
        self
    }

    /// Minimises the worst single transition (Eq. 11) instead of the
    /// all-pairs total — for real-time deadlines.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the worker-thread count (`0` = one per available core). Any
    /// value produces byte-identical results; threads only change how
    /// fast the same answer arrives.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs an independent result verifier (see [`crate::audit`]).
    pub fn with_auditor(mut self, auditor: AuditorHandle) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// Bounds the search with a cooperative [`SearchBudget`] (deadline,
    /// state/unit limits, cancel token). Budgets never cause errors; a
    /// tripped limit yields the certified best-so-far scheme with the
    /// truncation recorded in the outcome.
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.search_budget = budget;
        self
    }

    /// Snapshots completed work units to a checkpoint file so an
    /// interrupted sweep can be resumed with [`Partitioner::resume_from`].
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Test hook: makes the listed work units panic on execution, to
    /// exercise panic isolation end to end.
    pub fn with_injected_unit_panics(mut self, units: Vec<usize>) -> Self {
        self.injected_unit_panics = units;
        self
    }

    /// Re-partitions an edited design, seeding the search with the
    /// grouping of a previous scheme (matched by module/mode *names*, so
    /// the two designs may differ structurally). The normal pipeline
    /// runs as well; the better result wins — so the seed can only help.
    /// Useful in the iterate-edit-repartition loop of a real tool, where
    /// scheme stability across small edits matters.
    pub fn repartition(
        &self,
        design: &Design,
        previous_design: &Design,
        previous: &Scheme,
    ) -> Result<PartitionOutcome, PartitionError> {
        let mut outcome = self.partition(design)?;
        let matrix = ConnectivityMatrix::from_design(design);

        // Translate the previous scheme's partitions into the new design.
        let translate = |p: &BasePartition| -> Option<BasePartition> {
            let modes: Vec<_> = p
                .modes
                .iter()
                .filter_map(|&m| {
                    let label = previous_design.mode_label(m);
                    let mut it = label.splitn(2, '.');
                    design.mode_id(it.next()?, it.next()?)
                })
                .collect();
            if modes.is_empty() {
                return None;
            }
            let candidate = BasePartition::from_modes(design, &matrix, modes);
            // Multi-mode groups must still co-occur somewhere.
            if candidate.num_modes() > 1 && matrix.support(&candidate.modes) == 0 {
                None
            } else {
                Some(candidate)
            }
        };

        // Seed pool: translated partitions, grouped as before where still
        // compatible, plus singletons for any uncovered mode.
        let mut pool: Vec<BasePartition> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut statics: Vec<usize> = Vec::new();
        for region in &previous.regions {
            let mut members: Vec<usize> = Vec::new();
            for &pi in &region.partitions {
                if let Some(part) = translate(&previous.partitions[pi]) {
                    // Keep in this region only if compatible with the
                    // members already there; otherwise it opens its own.
                    let compatible = members.iter().all(|&m| pool[m].compatible_with(&part));
                    pool.push(part);
                    if compatible {
                        members.push(pool.len() - 1);
                    } else {
                        groups.push(vec![pool.len() - 1]);
                    }
                }
            }
            if !members.is_empty() {
                groups.push(members);
            }
        }
        for &pi in &previous.static_partitions {
            if let Some(part) = translate(&previous.partitions[pi]) {
                pool.push(part);
                statics.push(pool.len() - 1);
            }
        }
        // Cover modes the previous scheme does not know about.
        let mut covered = vec![false; design.num_modes()];
        for p in &pool {
            for m in &p.modes {
                covered[m.idx()] = true;
            }
        }
        for (m, covered) in covered.iter().enumerate() {
            let g = prpart_design::GlobalModeId(m as u32);
            if !covered && matrix.node_weight(g) > 0 {
                pool.push(BasePartition::from_modes(design, &matrix, vec![g]));
                groups.push(vec![pool.len() - 1]);
            }
        }

        let clock = BudgetClock::new(&self.search_budget);
        let sobs = SearchObs::new(&self.obs, self.strategy);
        let ctx = self.make_ctx(design, &pool, &clock, &sobs);
        let mut seeded = State {
            groups: groups.iter().map(|g| Group::new(&ctx, g.clone())).collect(),
            statics: statics.clone(),
            static_res: statics.iter().map(|&p| pool[p].resources).sum(),
            time: 0.0,
            area: Resources::ZERO,
        };
        seeded.recompute_totals(&ctx);
        let mut best = Best::new();
        let mut stats = SearchStats::default();
        greedy_descent(&ctx, &mut seeded, &mut best, &mut stats, &mut HashSet::new());
        outcome.states_evaluated += stats.states_evaluated;
        let (seeded_best, seeded_front) = best.into_evaluated(design, &self.budget, self.semantics);
        if let Some(sb) = seeded_best {
            let better = match &outcome.best {
                None => true,
                Some(ob) => {
                    sb.metrics.total_frames < ob.metrics.total_frames
                        || (sb.metrics.total_frames == ob.metrics.total_frames
                            && sb.metrics.resources.total_primitives()
                                < ob.metrics.resources.total_primitives())
                }
            };
            if better {
                outcome.best = Some(sb);
                outcome.pareto_front = seeded_front;
            }
        }
        self.audit_outcome(design, &outcome.best, &outcome.pareto_front)?;
        Ok(outcome)
    }

    /// Runs the full pipeline: feasibility → clustering → covering →
    /// region allocation. Returns the best feasible scheme found (if any)
    /// and search statistics.
    pub fn partition(&self, design: &Design) -> Result<PartitionOutcome, PartitionError> {
        self.run_search(design, None)
    }

    /// Resumes an interrupted sweep from a checkpoint written by a
    /// previous run with the same design and settings (guarded by a
    /// fingerprint). Completed units are replayed from the snapshot and
    /// everything else is executed; because the reduction is unit-ordered
    /// either way, the result is byte-identical to an uninterrupted run
    /// at any thread count.
    pub fn resume_from(
        &self,
        design: &Design,
        path: &Path,
    ) -> Result<PartitionOutcome, PartitionError> {
        let loaded = checkpoint::load(path)?;
        self.run_search(design, Some((path, loaded)))
    }

    fn run_search(
        &self,
        design: &Design,
        resume: Option<(&Path, LoadedCheckpoint)>,
    ) -> Result<PartitionOutcome, PartitionError> {
        let sobs = SearchObs::new(&self.obs, self.strategy);
        let _search_span = self.obs.span("search");
        check_feasibility(design, &self.budget)?;
        if let Some(w) = &self.transition_weights {
            if w.num_configurations() != design.num_configurations() {
                return Err(PartitionError::WeightsDimension {
                    expected: design.num_configurations(),
                    got: w.num_configurations(),
                });
            }
        }
        let matrix = ConnectivityMatrix::from_design(design);
        let parts = generate_base_partitions(design, &matrix, self.clique_limit)?;
        let (max_sets, runner): (usize, Runner) = match self.strategy {
            SearchStrategy::GreedyRestarts { max_candidate_sets, max_first_moves } => {
                (max_candidate_sets, Runner::Greedy { max_first_moves })
            }
            SearchStrategy::Beam { width, max_candidate_sets } => {
                (max_candidate_sets, Runner::Beam { width })
            }
            SearchStrategy::Annealing { iterations, seed, max_candidate_sets } => {
                (max_candidate_sets, Runner::Annealing { iterations, seed })
            }
            SearchStrategy::Exhaustive { max_partitions, max_candidate_sets } => {
                (max_candidate_sets, Runner::Exhaustive { max_partitions })
            }
        };
        let sets: Vec<Vec<usize>> =
            CandidateSets::new(&matrix, &parts).take(max_sets.max(1)).collect();
        let units = build_units(runner, sets.len());

        let fingerprint = self.fingerprint(design);
        let restored = match resume {
            Some((path, loaded)) => {
                validate_snapshot(path, &loaded, fingerprint, &units, &sets)?;
                loaded.units
            }
            None => BTreeMap::new(),
        };

        let clock = BudgetClock::new(&self.search_budget);
        let writer = self
            .checkpoint
            .as_ref()
            .map(|cfg| CheckpointWriter::new(cfg, fingerprint, units.len()));
        if let Some(w) = &writer {
            w.preload(&restored);
        }

        let results = self.execute_units(
            design,
            &parts,
            &sets,
            runner,
            &units,
            &clock,
            &restored,
            writer.as_ref(),
            &sobs,
        )?;

        let mut best = Best::new();
        let mut stats = SearchStats::default();
        let mut units_completed = 0;
        let mut units_partial = 0;
        let mut units_skipped = 0;
        let mut units_resumed = 0;
        let mut poisoned_units = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            match result {
                UnitResult::Done { best: b, stats: s, resumed } => {
                    best.merge(b);
                    stats.merge(&s);
                    units_completed += 1;
                    if resumed {
                        units_resumed += 1;
                    }
                }
                UnitResult::Partial { best: b, stats: s } => {
                    best.merge(b);
                    stats.merge(&s);
                    units_partial += 1;
                }
                UnitResult::Skipped => units_skipped += 1,
                UnitResult::Poisoned { message } => {
                    poisoned_units.push(PoisonedUnit { unit: i, message })
                }
            }
        }
        stats.candidate_sets_explored = sets.len();
        sobs.states_evaluated.add(stats.states_evaluated);
        sobs.states_pruned.add(stats.states_pruned);
        sobs.candidate_sets.add(sets.len() as u64);
        sobs.units_completed.add(units_completed as u64);
        sobs.units_partial.add(units_partial as u64);
        sobs.units_skipped.add(units_skipped as u64);
        sobs.units_resumed.add(units_resumed as u64);
        sobs.units_poisoned.add(poisoned_units.len() as u64);
        if let Some(w) = &writer {
            w.finish()?;
        }

        let search_outcome = clock.trip_outcome().unwrap_or(if units_skipped > 0 {
            // No clock limit fired, so skips can only come from max_units.
            SearchOutcome::BudgetExhausted
        } else {
            SearchOutcome::Complete
        });

        let (best, pareto_front) = best.into_evaluated(design, &self.budget, self.semantics);
        self.audit_outcome(design, &best, &pareto_front)?;
        Ok(PartitionOutcome {
            best,
            pareto_front,
            candidate_sets_explored: stats.candidate_sets_explored,
            states_evaluated: stats.states_evaluated,
            states_pruned: stats.states_pruned,
            search_outcome,
            units_total: units.len(),
            units_completed,
            units_partial,
            units_skipped,
            units_resumed,
            poisoned_units,
        })
    }

    /// Fingerprint of the (design, settings) pair a checkpoint belongs
    /// to. Covers everything that shapes the unit list or any unit's
    /// result; deliberately excludes threads, auditor, budget limits,
    /// the observability sink and the checkpoint config itself — none of
    /// which change what a completed unit computes.
    fn fingerprint(&self, design: &Design) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(design.name());
        let res = |h: &mut Fnv64, r: Resources| {
            h.write_u64(u64::from(r.clb));
            h.write_u64(u64::from(r.bram));
            h.write_u64(u64::from(r.dsp));
        };
        res(&mut h, design.static_overhead());
        h.write_u64(design.modules().len() as u64);
        for module in design.modules() {
            h.write_str(&module.name);
            h.write_u64(module.modes.len() as u64);
            for mode in &module.modes {
                h.write_str(&mode.name);
                res(&mut h, mode.resources);
            }
        }
        h.write_u64(design.configurations().len() as u64);
        for config in design.configurations() {
            h.write_str(&config.name);
            for sel in &config.selection {
                h.write_u64(sel.map_or(0, |k| u64::from(k) + 1));
            }
        }
        res(&mut h, self.budget);
        h.write_u64(match self.semantics {
            TransitionSemantics::Optimistic => 0,
            TransitionSemantics::Pessimistic => 1,
        });
        match self.strategy {
            SearchStrategy::GreedyRestarts { max_candidate_sets, max_first_moves } => {
                h.write_u64(1);
                h.write_u64(max_candidate_sets as u64);
                h.write_u64(max_first_moves as u64);
            }
            SearchStrategy::Beam { width, max_candidate_sets } => {
                h.write_u64(2);
                h.write_u64(width as u64);
                h.write_u64(max_candidate_sets as u64);
            }
            SearchStrategy::Annealing { iterations, seed, max_candidate_sets } => {
                h.write_u64(3);
                h.write_u64(iterations as u64);
                h.write_u64(seed);
                h.write_u64(max_candidate_sets as u64);
            }
            SearchStrategy::Exhaustive { max_partitions, max_candidate_sets } => {
                h.write_u64(4);
                h.write_u64(max_partitions as u64);
                h.write_u64(max_candidate_sets as u64);
            }
        }
        h.write_u64(self.clique_limit as u64);
        h.write_u64(u64::from(self.allow_static_promotion));
        h.write_u64(match self.objective {
            Objective::TotalTime => 0,
            Objective::WorstCase => 1,
        });
        if let Some(w) = &self.transition_weights {
            let n = w.num_configurations();
            h.write_u64(n as u64);
            for i in 0..n {
                for j in 0..n {
                    h.write_u64(w.get(i, j).to_bits());
                }
            }
        }
        h.finish()
    }

    fn make_ctx<'a>(
        &'a self,
        design: &'a Design,
        pool: &'a [BasePartition],
        clock: &'a BudgetClock,
        obs: &'a SearchObs,
    ) -> Ctx<'a> {
        Ctx {
            pool,
            design,
            num_configs: design.num_configurations(),
            budget: self.budget,
            overhead: design.static_overhead(),
            semantics: self.semantics,
            allow_static: self.allow_static_promotion,
            weights: self.transition_weights.as_ref(),
            objective: self.objective,
            auditor: self.auditor.as_ref(),
            clock,
            obs,
            merge_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Certifies a finished answer (best scheme plus every Pareto-front
    /// entry) through the installed auditor, if any. Called on every path
    /// that returns a [`PartitionOutcome`], in release and debug builds
    /// alike.
    fn audit_outcome(
        &self,
        design: &Design,
        best: &Option<EvaluatedScheme>,
        front: &[EvaluatedScheme],
    ) -> Result<(), PartitionError> {
        let Some(handle) = &self.auditor else { return Ok(()) };
        for evaluated in best.iter().chain(front.iter()) {
            handle.0.audit(design, evaluated).map_err(|details| PartitionError::AuditFailed {
                auditor: handle.0.name(),
                details,
            })?;
        }
        Ok(())
    }

    /// Runs every unit and returns the per-unit results **in unit order**.
    /// Multi-threaded execution hands units to workers through an atomic
    /// counter and sorts the collected results back into unit order, so
    /// the reduction downstream sees exactly the sequential ordering.
    #[allow(clippy::too_many_arguments)]
    fn execute_units(
        &self,
        design: &Design,
        parts: &[BasePartition],
        sets: &[Vec<usize>],
        runner: Runner,
        units: &[UnitSpec],
        clock: &BudgetClock,
        restored: &BTreeMap<usize, UnitSnapshot>,
        writer: Option<&CheckpointWriter>,
        sobs: &SearchObs,
    ) -> Result<Vec<UnitResult>, PartitionError> {
        // Counts units actually *executed* (not restored or skipped), so
        // `SearchBudget::max_units` truncates at an exact unit boundary.
        let executed = AtomicUsize::new(0);
        let exec = |i: usize| {
            self.exec_one(
                i, &units[i], design, parts, sets, runner, clock, restored, writer, &executed, sobs,
            )
        };
        let threads = resolve_threads(self.threads).min(units.len().max(1));
        if threads <= 1 {
            return Ok((0..units.len()).map(exec).collect());
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, UnitResult)>> = Mutex::new(Vec::with_capacity(units.len()));
        // Per-unit execution is panic-isolated, so a worker unwinding here
        // would be an engine bug; surface it as a typed error instead of
        // propagating the panic into the caller.
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let r = exec(i);
                    results.lock().push((i, r));
                });
            }
        })
        .map_err(|payload| PartitionError::Internal {
            detail: format!(
                "a search worker panicked outside unit isolation: {}",
                panic_message(payload.as_ref())
            ),
        })?;
        let mut collected = results.into_inner();
        collected.sort_by_key(|&(i, _)| i);
        Ok(collected.into_iter().map(|(_, r)| r).collect())
    }

    /// Executes (or restores, or skips) one unit. Gate order: restored
    /// snapshot → budget clock → unit budget → panic-isolated execution.
    /// A unit that finishes after the clock tripped is reported
    /// [`UnitResult::Partial`]: its results merge (they are valid states)
    /// but are not checkpointed, which is conservative and sound — a
    /// resumed run simply re-executes it.
    #[allow(clippy::too_many_arguments)]
    fn exec_one(
        &self,
        i: usize,
        unit: &UnitSpec,
        design: &Design,
        parts: &[BasePartition],
        sets: &[Vec<usize>],
        runner: Runner,
        clock: &BudgetClock,
        restored: &BTreeMap<usize, UnitSnapshot>,
        writer: Option<&CheckpointWriter>,
        executed: &AtomicUsize,
        sobs: &SearchObs,
    ) -> UnitResult {
        if let Some(snapshot) = restored.get(&i) {
            let pool: Vec<BasePartition> =
                sets[unit.set].iter().map(|&p| parts[p].clone()).collect();
            let (best, stats) = restore_unit(snapshot, &pool, design.num_configurations());
            return UnitResult::Done { best, stats, resumed: true };
        }
        let poll_start = sobs.now();
        let tripped = clock.poll();
        sobs.record_poll(poll_start);
        if tripped {
            return UnitResult::Skipped;
        }
        if let Some(limit) = self.search_budget.max_units {
            if executed.fetch_add(1, Ordering::Relaxed) >= limit {
                return UnitResult::Skipped;
            }
        }
        let inject = self.injected_unit_panics.contains(&i);
        let unit_start = sobs.now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            assert!(!inject, "injected panic in unit {i}");
            self.run_unit(design, parts, sets, runner, unit, clock, sobs)
        }));
        if sobs.handle.is_enabled() {
            sobs.unit_nanos.record(sobs.now().saturating_sub(unit_start));
        }
        match outcome {
            Ok((best, stats)) => {
                if clock.tripped() {
                    UnitResult::Partial { best, stats }
                } else {
                    if let Some(w) = writer {
                        w.record(i, snapshot_unit(&best, &stats));
                    }
                    UnitResult::Done { best, stats, resumed: false }
                }
            }
            Err(payload) => UnitResult::Poisoned { message: panic_message(payload.as_ref()) },
        }
    }

    /// Runs one unit: builds the candidate-set pool and context locally
    /// (the merge transposition table is per-unit, so workers never share
    /// mutable state) and executes the strategy slice the unit names.
    #[allow(clippy::too_many_arguments)]
    fn run_unit(
        &self,
        design: &Design,
        parts: &[BasePartition],
        sets: &[Vec<usize>],
        runner: Runner,
        unit: &UnitSpec,
        clock: &BudgetClock,
        sobs: &SearchObs,
    ) -> (Best, SearchStats) {
        let pool: Vec<BasePartition> = sets[unit.set].iter().map(|&i| parts[i].clone()).collect();
        let ctx = self.make_ctx(design, &pool, clock, sobs);
        let mut best = Best::new();
        let mut stats = SearchStats::default();
        let mut initial = State::initial(&ctx);
        match (runner, unit.part) {
            (Runner::Greedy { max_first_moves }, UnitPart::RestartChunk { chunk }) => {
                greedy_restart_chunk(
                    &ctx,
                    &mut initial,
                    max_first_moves,
                    chunk,
                    &mut best,
                    &mut stats,
                );
            }
            (Runner::Beam { width }, _) => beam(&ctx, initial, width, &mut best, &mut stats),
            (Runner::Annealing { iterations, seed }, _) => {
                annealing(&ctx, initial, iterations, seed, &mut best, &mut stats)
            }
            (Runner::Exhaustive { max_partitions }, _) => {
                if pool.len() <= max_partitions {
                    exhaustive(&ctx, &mut best, &mut stats);
                } else {
                    // Pool too large for the oracle; fall back to a plain
                    // greedy descent so the call still returns a result.
                    greedy_restart_chunk(&ctx, &mut initial, 1, 0, &mut best, &mut stats);
                }
            }
            (Runner::Greedy { max_first_moves }, UnitPart::Whole) => {
                let chunks = restart_chunks(max_first_moves);
                for chunk in 0..chunks {
                    greedy_restart_chunk(
                        &ctx,
                        &mut initial,
                        max_first_moves,
                        chunk,
                        &mut best,
                        &mut stats,
                    );
                }
            }
        }
        (best, stats)
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// What happened to one work unit during a sweep.
enum UnitResult {
    /// Ran to completion (or was restored from a checkpoint).
    Done { best: Best, stats: SearchStats, resumed: bool },
    /// Finished executing after the budget clock tripped: its results
    /// merge but it is neither checkpointed nor counted complete.
    Partial { best: Best, stats: SearchStats },
    /// Never executed (budget tripped or unit budget exhausted).
    Skipped,
    /// Panicked; isolated and recorded, the sweep continues.
    Poisoned { message: String },
}

/// A work unit that panicked during a sweep, recorded in
/// [`PartitionOutcome::poisoned_units`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedUnit {
    /// Index of the unit in the sweep's ordered unit list.
    pub unit: usize,
    /// The panic payload, when it was a string (the usual case).
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unit panicked with a non-string payload".to_string()
    }
}

/// Rejects a loaded checkpoint that does not belong to this exact
/// (design, settings) pair or whose stored shapes cannot index the pools
/// the current run would rebuild. Validating everything up front keeps
/// the restore path inside the sweep infallible.
fn validate_snapshot(
    path: &Path,
    loaded: &LoadedCheckpoint,
    fingerprint: u64,
    units: &[UnitSpec],
    sets: &[Vec<usize>],
) -> Result<(), PartitionError> {
    let fail =
        |detail: String| PartitionError::Checkpoint { path: path.display().to_string(), detail };
    if loaded.fingerprint != fingerprint {
        return Err(fail(format!(
            "fingerprint mismatch: checkpoint is for {:016x} but this design and \
             configuration hash to {fingerprint:016x}",
            loaded.fingerprint
        )));
    }
    if loaded.units_total != units.len() {
        return Err(fail(format!(
            "unit count mismatch: checkpoint has {} units but this run would execute {}",
            loaded.units_total,
            units.len()
        )));
    }
    for (&idx, snapshot) in &loaded.units {
        // The loader already bounds idx by units_total.
        let pool_len = sets[units[idx].set].len();
        for point in snapshot.best.iter().chain(snapshot.front.iter()) {
            if point.shape.max_index().is_some_and(|m| m >= pool_len) {
                return Err(fail(format!(
                    "unit {idx} references pool index {} but its pool has {pool_len} partitions",
                    point.shape.max_index().unwrap_or(0),
                )));
            }
        }
    }
    Ok(())
}

/// Captures a completed unit's contribution as a checkpoint snapshot.
fn snapshot_unit(best: &Best, stats: &SearchStats) -> UnitSnapshot {
    let point = |time: f64, area: u64, scheme: &Scheme| SchemePoint {
        time_bits: time.to_bits(),
        area,
        shape: SchemeShape::of(scheme),
    };
    UnitSnapshot {
        states: stats.states_evaluated,
        pruned: stats.states_pruned,
        best: best.scheme.as_ref().map(|s| point(best.time, best.area, s)),
        front: best.pareto.iter().map(|(t, a, s)| point(*t, *a, s)).collect(),
    }
}

/// Rebuilds a unit's exact contribution from its snapshot: the restored
/// [`Best`] (scheme, tie-break keys, Pareto entries *in stored order*)
/// merges identically to the one the original execution produced, which
/// is what makes resumed output byte-identical.
fn restore_unit(
    snapshot: &UnitSnapshot,
    pool: &[BasePartition],
    num_configurations: usize,
) -> (Best, SearchStats) {
    let scheme = |point: &SchemePoint| point.shape.clone().into_scheme(pool, num_configurations);
    let mut best = Best::new();
    if let Some(point) = &snapshot.best {
        best.scheme = Some(scheme(point));
        best.time = f64::from_bits(point.time_bits);
        best.area = point.area;
    }
    best.pareto = snapshot
        .front
        .iter()
        .map(|point| (f64::from_bits(point.time_bits), point.area, scheme(point)))
        .collect();
    let stats = SearchStats {
        candidate_sets_explored: 0,
        states_evaluated: snapshot.states,
        states_pruned: snapshot.pruned,
    };
    (best, stats)
}

#[derive(Clone, Copy)]
enum Runner {
    Greedy { max_first_moves: usize },
    Beam { width: usize },
    Annealing { iterations: usize, seed: u64 },
    Exhaustive { max_partitions: usize },
}

/// Restarts per greedy work unit: small enough to load-balance across
/// workers, large enough to amortise the per-unit pool/context setup.
const RESTART_CHUNK: usize = 8;

fn restart_chunks(max_first_moves: usize) -> usize {
    max_first_moves.max(1).div_ceil(RESTART_CHUNK)
}

/// One independently executable slice of the search. The unit list is a
/// pure function of the strategy and the candidate sets — never of the
/// thread count — which is what makes parallel output deterministic.
#[derive(Clone, Copy)]
struct UnitSpec {
    set: usize,
    part: UnitPart,
}

#[derive(Clone, Copy)]
enum UnitPart {
    /// The whole candidate set (beam / annealing / exhaustive).
    Whole,
    /// Greedy restarts `[chunk*RESTART_CHUNK, (chunk+1)*RESTART_CHUNK)`
    /// of the scored first-move list.
    RestartChunk { chunk: usize },
}

fn build_units(runner: Runner, num_sets: usize) -> Vec<UnitSpec> {
    let mut units = Vec::new();
    for set in 0..num_sets {
        match runner {
            Runner::Greedy { max_first_moves } => {
                for chunk in 0..restart_chunks(max_first_moves) {
                    units.push(UnitSpec { set, part: UnitPart::RestartChunk { chunk } });
                }
            }
            _ => units.push(UnitSpec { set, part: UnitPart::Whole }),
        }
    }
    units
}

/// Result of a [`Partitioner::partition`] run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Best feasible scheme found, evaluated. `None` when no explored
    /// state fits the budget (the caller should escalate the device;
    /// see [`crate::device_select`]).
    pub best: Option<EvaluatedScheme>,
    /// The time/area Pareto front over all feasible states explored:
    /// schemes none of which is dominated (lower-or-equal total time
    /// *and* area) by another, sorted by ascending total time. The best
    /// scheme is its first element. Useful when the designer wants to
    /// trade reconfiguration time against device headroom.
    pub pareto_front: Vec<EvaluatedScheme>,
    /// Candidate partition sets explored.
    pub candidate_sets_explored: usize,
    /// Assignment states evaluated across all runs.
    pub states_evaluated: u64,
    /// States cut without expansion: greedy descents stopped at a state
    /// an earlier restart of the same chunk already walked (an exact
    /// replay), plus beam children dominated on both area and time by
    /// the Pareto archive. Neither cut can change any reported result.
    pub states_pruned: u64,
    /// Why the sweep ended: [`SearchOutcome::Complete`] for a full run,
    /// otherwise the budget limit or cancellation that truncated it. A
    /// truncated outcome is still certified (auditor, proof-checker) —
    /// it is the best result of the work that did run.
    pub search_outcome: SearchOutcome,
    /// Work units the sweep was divided into.
    pub units_total: usize,
    /// Units that ran to completion (including restored ones).
    pub units_completed: usize,
    /// Units that finished after the budget tripped: merged into the
    /// result but not checkpointed.
    pub units_partial: usize,
    /// Units never executed because a budget tripped first.
    pub units_skipped: usize,
    /// Units replayed from a checkpoint instead of executed.
    pub units_resumed: usize,
    /// Units that panicked; each is isolated and recorded while the rest
    /// of the sweep continues.
    pub poisoned_units: Vec<PoisonedUnit>,
}

impl PartitionOutcome {
    /// The feasible schemes of this outcome in preference order: the
    /// best scheme first, then the remaining Pareto-front schemes by
    /// ascending total reconfiguration time. Downstream stages that can
    /// reject a scheme for reasons the search cannot see (e.g. a
    /// floorplanner hitting the device's column layout) walk this
    /// instead of re-running the whole search: each rejection costs one
    /// placement attempt, not a sweep.
    pub fn alternatives(&self) -> impl Iterator<Item = &EvaluatedScheme> {
        let best = self.best.iter();
        let rest = self
            .pareto_front
            .iter()
            .filter(move |e| self.best.as_ref().map(|b| b.scheme != e.scheme).unwrap_or(true));
        best.chain(rest)
    }
}

#[derive(Default)]
struct SearchStats {
    candidate_sets_explored: usize,
    states_evaluated: u64,
    states_pruned: u64,
}

impl SearchStats {
    fn merge(&mut self, other: &SearchStats) {
        self.candidate_sets_explored += other.candidate_sets_explored;
        self.states_evaluated += other.states_evaluated;
        self.states_pruned += other.states_pruned;
    }
}

/// Pre-acquired metric handles for one search run. Handles are acquired
/// once per run (so each name registers exactly once — PL012) and then
/// updated lock-free; with observability disabled every handle is
/// detached and every update is a no-op.
#[derive(Clone, Default)]
struct SearchObs {
    handle: ObsHandle,
    states_evaluated: Counter,
    states_pruned: Counter,
    candidate_sets: Counter,
    merge_evaluations: Counter,
    merge_cache_hits: Counter,
    undo_depth_max: Gauge,
    units_completed: Counter,
    units_partial: Counter,
    units_skipped: Counter,
    units_resumed: Counter,
    units_poisoned: Counter,
    unit_nanos: Histogram,
    budget_poll_nanos: Histogram,
}

impl SearchObs {
    fn new(handle: &ObsHandle, strategy: SearchStrategy) -> SearchObs {
        let s = strategy_label(strategy);
        SearchObs {
            handle: handle.clone(),
            states_evaluated: handle.counter(&format!("search.{s}.states_evaluated")),
            states_pruned: handle.counter(&format!("search.{s}.states_pruned")),
            candidate_sets: handle.counter("search.candidate_sets_explored"),
            merge_evaluations: handle.counter("search.merge.evaluations"),
            merge_cache_hits: handle.counter("search.merge.cache_hits"),
            undo_depth_max: handle.gauge("search.undo_depth.max"),
            units_completed: handle.counter("search.units.completed"),
            units_partial: handle.counter("search.units.partial"),
            units_skipped: handle.counter("search.units.skipped"),
            units_resumed: handle.counter("search.units.resumed"),
            units_poisoned: handle.counter("search.units.poisoned"),
            unit_nanos: handle.duration_histogram("search.unit.nanos"),
            budget_poll_nanos: handle.duration_histogram("search.budget_poll.nanos"),
        }
    }

    /// Clock reading for a paired before/after measurement; 0 (and no
    /// clock read at all) when disabled.
    fn now(&self) -> u64 {
        self.handle.now_nanos()
    }

    /// Records one budget-poll latency measured from `start`.
    fn record_poll(&self, start: u64) {
        if self.handle.is_enabled() {
            self.budget_poll_nanos.record(self.now().saturating_sub(start));
        }
    }
}

/// Stable metric-name segment for a strategy.
fn strategy_label(strategy: SearchStrategy) -> &'static str {
    match strategy {
        SearchStrategy::GreedyRestarts { .. } => "greedy",
        SearchStrategy::Beam { .. } => "beam",
        SearchStrategy::Annealing { .. } => "annealing",
        SearchStrategy::Exhaustive { .. } => "exhaustive",
    }
}

/// Cap on memoised merged groups per unit, bounding worst-case memory on
/// pathological pools; past it, merges are computed without caching.
const MERGE_CACHE_CAP: usize = 1 << 16;

/// Shared search context for one candidate partition set.
struct Ctx<'a> {
    pool: &'a [BasePartition],
    design: &'a Design,
    num_configs: usize,
    budget: Resources,
    overhead: Resources,
    semantics: TransitionSemantics,
    allow_static: bool,
    weights: Option<&'a TransitionWeights>,
    objective: Objective,
    auditor: Option<&'a AuditorHandle>,
    /// The run's shared budget clock; polled cooperatively by every
    /// strategy at state granularity.
    clock: &'a BudgetClock,
    /// Pre-acquired metric handles; all no-ops when observability is
    /// disabled.
    obs: &'a SearchObs,
    /// Transposition table for merged groups, keyed by the merged member
    /// list (which — given the deterministic left-to-right merge
    /// construction — is the canonical content of the resulting group).
    /// Per-unit, so it is only ever touched from one thread.
    merge_cache: RefCell<HashMap<Vec<usize>, Group>>,
}

impl Ctx<'_> {
    /// Counts one evaluated state and charges it against the budget
    /// clock. Returns `true` when the search should stop; with no budget
    /// configured this is exactly the old `states_evaluated += 1` and
    /// never stops, so unbudgeted runs are byte-identical to before.
    fn note_state(&self, stats: &mut SearchStats) -> bool {
        stats.states_evaluated += 1;
        if self.obs.handle.is_enabled() {
            let start = self.obs.now();
            let stop = self.clock.charge_state();
            self.obs.record_poll(start);
            stop
        } else {
            self.clock.charge_state()
        }
    }

    /// Merges two groups, memoised: greedy descent previews every
    /// merge pair at every step, and all pairs not touching the group
    /// changed by the previous step recur verbatim — as do the first
    /// moves shared by all restarts of one candidate set.
    fn merged(&self, a: &Group, b: &Group) -> Group {
        let mut key = Vec::with_capacity(a.members.len() + b.members.len());
        key.extend_from_slice(&a.members);
        key.extend_from_slice(&b.members);
        if let Some(g) = self.merge_cache.borrow().get(&key) {
            self.obs.merge_cache_hits.incr();
            return g.clone();
        }
        self.obs.merge_evaluations.incr();
        let g = Group::new(self, key.clone());
        let mut cache = self.merge_cache.borrow_mut();
        if cache.len() < MERGE_CACHE_CAP {
            cache.insert(key, g.clone());
        }
        g
    }

    /// Debug-build self-check on an accepted state: cross-checks the
    /// incrementally maintained totals against the full
    /// [`Scheme::metrics`] evaluation and, when an auditor is installed,
    /// certifies the state through it — observing a search bug at the
    /// exact acceptance that introduced it rather than in the final
    /// answer. Never called in release builds (the caller gates on
    /// `cfg!(debug_assertions)`).
    fn debug_audit(&self, state: &State) {
        let scheme = state.to_scheme(self);
        let metrics = scheme.metrics(self.overhead, &self.budget, self.semantics);
        assert_eq!(
            state.area, metrics.resources,
            "incremental area diverged from the full evaluation"
        );
        if self.weights.is_none() {
            let full = match self.objective {
                Objective::TotalTime => metrics.total_frames,
                Objective::WorstCase => metrics.worst_frames,
            };
            assert_eq!(
                state.time, full as f64,
                "incremental time diverged from the full evaluation"
            );
        }
        if let Some(handle) = self.auditor {
            let evaluated = EvaluatedScheme { scheme, metrics };
            if let Err(details) = handle.0.audit(self.design, &evaluated) {
                panic!("{} rejected an accepted search state: {details}", handle.0.name());
            }
        }
    }
}

/// One region in a search state, with cached cost components.
#[derive(Clone)]
struct Group {
    members: Vec<usize>,
    /// Union of member presence masks (regions are mergeable iff their
    /// masks are disjoint).
    mask: BitSet,
    /// Tile-quantised capacity of the element-wise max of member
    /// resources (Eqs. 2–5).
    cap: Resources,
    /// Frames to reconfigure (Eq. 6).
    frames: u64,
    /// Reconfiguring pair mass: the number of unordered configuration
    /// pairs in which this region reconfigures (uniform), or their
    /// weighted sum when transition weights are in force.
    mass: f64,
    /// Sum of raw member resources — the cost of promoting to static.
    raw_sum: Resources,
}

impl Group {
    fn new(ctx: &Ctx<'_>, members: Vec<usize>) -> Group {
        let mut mask = BitSet::new(ctx.num_configs);
        let mut res = Resources::ZERO;
        let mut raw_sum = Resources::ZERO;
        for &p in &members {
            mask.union_with(&ctx.pool[p].presence);
            res = res.max(ctx.pool[p].resources);
            raw_sum += ctx.pool[p].resources;
        }
        let tiles = TileCounts::for_resources(&res);
        let frames = tiles.frames();
        let mass = Group::differing_mass(ctx, &members);
        Group { members, mask, cap: tiles.capacity(), frames, mass, raw_sum }
    }

    /// Mass of configuration pairs between which this region's state
    /// differs. Because member presence masks are disjoint, the uniform
    /// case reduces to counting from each member's presence count; the
    /// weighted case sums pair weights over the mask structure.
    fn differing_mass(ctx: &Ctx<'_>, members: &[usize]) -> f64 {
        match ctx.weights {
            None => {
                let choose2 = |n: u64| n * n.saturating_sub(1) / 2;
                let c = ctx.num_configs as u64;
                let mut active = 0u64;
                let mut same = 0u64;
                for &p in members {
                    let n = ctx.pool[p].presence.len() as u64;
                    active += n;
                    same += choose2(n);
                }
                (match ctx.semantics {
                    TransitionSemantics::Optimistic => choose2(active) - same,
                    TransitionSemantics::Pessimistic => choose2(c) - same - choose2(c - active),
                }) as f64
            }
            Some(w) => {
                // mass(S) = sum of pair weights within configuration set S.
                let mass_of = |s: &[usize]| -> f64 {
                    let mut m = 0.0;
                    for (a, &i) in s.iter().enumerate() {
                        for &j in &s[a + 1..] {
                            m += w.get(i, j);
                        }
                    }
                    m
                };
                let mut active: Vec<usize> = Vec::new();
                let mut within = 0.0;
                for &p in members {
                    let s: Vec<usize> = ctx.pool[p].presence.iter().collect();
                    within += mass_of(&s);
                    active.extend(s);
                }
                active.sort_unstable();
                match ctx.semantics {
                    TransitionSemantics::Optimistic => mass_of(&active) - within,
                    TransitionSemantics::Pessimistic => {
                        let none: Vec<usize> = (0..ctx.num_configs)
                            .filter(|c| active.binary_search(c).is_err())
                            .collect();
                        w.total_mass() - within - mass_of(&none)
                    }
                }
            }
        }
    }

    fn time(&self) -> f64 {
        self.mass * self.frames as f64
    }
}

/// One assignment state: regions plus static promotions, with cached
/// totals.
#[derive(Clone)]
struct State {
    groups: Vec<Group>,
    statics: Vec<usize>,
    static_res: Resources,
    /// Total reconfiguration cost: frames (Eq. 10) under uniform
    /// weights, weighted frame mass otherwise.
    time: f64,
    /// Total resource requirement including static overhead.
    area: Resources,
}

/// Canonical structural identity of a [`State`]: the member *sets* of
/// its groups in sorted order (via the [`BitSet`] total order) plus the
/// static member set. Unlike the 64-bit hash it replaces, equal keys
/// mean equal states — a hash collision can no longer silently drop a
/// distinct state from the beam.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    groups: Vec<BitSet>,
    statics: BitSet,
}

/// The record needed to reverse one [`State::apply_mut`] exactly:
/// displaced groups plus the previous cached totals (restored verbatim,
/// so repeated apply/undo cycles cannot accumulate float drift).
enum UndoMove {
    Merge { i: usize, j: usize, old_i: Group, old_j: Group, time: f64, area: Resources },
    Promote { i: usize, group: Group, statics_len: usize, time: f64, area: Resources },
}

impl State {
    fn initial(ctx: &Ctx<'_>) -> State {
        let groups: Vec<Group> = (0..ctx.pool.len()).map(|p| Group::new(ctx, vec![p])).collect();
        let mut s = State {
            groups,
            statics: Vec::new(),
            static_res: Resources::ZERO,
            time: 0.0,
            area: Resources::ZERO,
        };
        s.recompute_totals(ctx);
        s
    }

    fn recompute_totals(&mut self, ctx: &Ctx<'_>) {
        self.time = match ctx.objective {
            Objective::TotalTime => self.groups.iter().map(Group::time).sum(),
            Objective::WorstCase => worst_case_of_groups(ctx, &self.groups),
        };
        self.area =
            self.groups.iter().map(|g| g.cap).sum::<Resources>() + self.static_res + ctx.overhead;
    }

    fn fits(&self, budget: &Resources) -> bool {
        self.area.fits_in(budget)
    }

    fn apply(&self, ctx: &Ctx<'_>, mv: Move) -> State {
        let mut next = self.clone();
        next.apply_mut(ctx, mv);
        next
    }

    /// Applies a move in place, updating the cached totals incrementally
    /// (total-time deltas are exact: uniform costs are integers well
    /// below 2^53). Returns the undo record that reverses it.
    fn apply_mut(&mut self, ctx: &Ctx<'_>, mv: Move) -> UndoMove {
        let (time, area) = (self.time, self.area);
        match mv {
            Move::Merge(i, j) => {
                debug_assert!(i < j);
                let merged = ctx.merged(&self.groups[i], &self.groups[j]);
                let old_j = self.groups.swap_remove(j);
                let old_i = std::mem::replace(&mut self.groups[i], merged);
                self.area = self.area - old_i.cap - old_j.cap + self.groups[i].cap;
                match ctx.objective {
                    Objective::TotalTime => {
                        self.time = self.time - old_i.time() - old_j.time() + self.groups[i].time();
                    }
                    Objective::WorstCase => {
                        self.time = worst_case_of_groups(ctx, &self.groups);
                    }
                }
                UndoMove::Merge { i, j, old_i, old_j, time, area }
            }
            Move::Promote(i) => {
                let g = self.groups.swap_remove(i);
                let statics_len = self.statics.len();
                self.statics.extend_from_slice(&g.members);
                self.static_res += g.raw_sum;
                self.area = self.area - g.cap + g.raw_sum;
                match ctx.objective {
                    Objective::TotalTime => self.time -= g.time(),
                    Objective::WorstCase => {
                        self.time = worst_case_of_groups(ctx, &self.groups);
                    }
                }
                UndoMove::Promote { i, group: g, statics_len, time, area }
            }
        }
    }

    /// Reverses one [`State::apply_mut`], restoring group order, static
    /// set and cached totals exactly.
    fn undo(&mut self, undo: UndoMove) {
        match undo {
            UndoMove::Merge { i, j, old_i, old_j, time, area } => {
                self.groups[i] = old_i;
                if j == self.groups.len() {
                    self.groups.push(old_j);
                } else {
                    let moved = std::mem::replace(&mut self.groups[j], old_j);
                    self.groups.push(moved);
                }
                self.time = time;
                self.area = area;
            }
            UndoMove::Promote { i, group, statics_len, time, area } => {
                self.statics.truncate(statics_len);
                self.static_res = self.static_res.saturating_sub(group.raw_sum);
                if i == self.groups.len() {
                    self.groups.push(group);
                } else {
                    let moved = std::mem::replace(&mut self.groups[i], group);
                    self.groups.push(moved);
                }
                self.time = time;
                self.area = area;
            }
        }
    }

    /// Predicted `(area, time)` after a move, without materialising it.
    /// Under the worst-case objective the per-pair maximum is not
    /// decomposable, so the candidate group set is evaluated directly.
    fn preview(&self, ctx: &Ctx<'_>, mv: Move) -> (Resources, f64) {
        match (ctx.objective, mv) {
            (Objective::TotalTime, Move::Merge(i, j)) => {
                let merged = ctx.merged(&self.groups[i], &self.groups[j]);
                let area = self.area - self.groups[i].cap - self.groups[j].cap + merged.cap;
                let time =
                    self.time - self.groups[i].time() - self.groups[j].time() + merged.time();
                (area, time)
            }
            (Objective::TotalTime, Move::Promote(i)) => {
                let area = self.area - self.groups[i].cap + self.groups[i].raw_sum;
                let time = self.time - self.groups[i].time();
                (area, time)
            }
            (Objective::WorstCase, mv) => {
                let next = self.apply(ctx, mv);
                (next.area, next.time)
            }
        }
    }

    fn moves(&self, ctx: &Ctx<'_>) -> Vec<Move> {
        let mut out = Vec::new();
        for i in 0..self.groups.len() {
            for j in i + 1..self.groups.len() {
                if self.groups[i].mask.is_disjoint(&self.groups[j].mask) {
                    out.push(Move::Merge(i, j));
                }
            }
        }
        if ctx.allow_static {
            for i in 0..self.groups.len() {
                out.push(Move::Promote(i));
            }
        }
        out
    }

    fn to_scheme(&self, ctx: &Ctx<'_>) -> Scheme {
        Scheme {
            partitions: ctx.pool.to_vec(),
            regions: self.groups.iter().map(|g| Region { partitions: g.members.clone() }).collect(),
            static_partitions: self.statics.clone(),
            num_configurations: ctx.num_configs,
        }
    }

    /// The canonical structural key for visited-set deduplication. Every
    /// state over one pool partitions the same `0..n` member indices, so
    /// all component bitsets share capacity `n` and compare canonically.
    fn canonical_key(&self) -> StateKey {
        let n = self.groups.iter().map(|g| g.members.len()).sum::<usize>() + self.statics.len();
        let mut groups: Vec<BitSet> = self
            .groups
            .iter()
            .map(|g| BitSet::from_iter_with_capacity(n, g.members.iter().copied()))
            .collect();
        groups.sort();
        let statics = BitSet::from_iter_with_capacity(n, self.statics.iter().copied());
        StateKey { groups, statics }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Merge groups `i` and `j` (`i < j`).
    Merge(usize, usize),
    /// Promote group `i` to static logic.
    Promote(usize),
}

/// Worst single transition over a group set (Eq. 11): accumulates each
/// group's frames into every configuration pair whose state differs,
/// then takes the maximum. O(pairs x groups); used only under
/// [`Objective::WorstCase`].
fn worst_case_of_groups(ctx: &Ctx<'_>, groups: &[Group]) -> f64 {
    let c = ctx.num_configs;
    if c < 2 {
        return 0.0;
    }
    let npairs = c * (c - 1) / 2;
    let pair_index = |i: usize, j: usize| -> usize {
        // i < j
        i * c - i * (i + 1) / 2 + (j - i - 1)
    };
    let mut per_pair = vec![0u64; npairs];
    for g in groups {
        if g.frames == 0 {
            continue;
        }
        // Region state per configuration from the member presence masks.
        let mut state = vec![usize::MAX; c];
        for (k, &p) in g.members.iter().enumerate() {
            for ci in ctx.pool[p].presence.iter() {
                state[ci] = k;
            }
        }
        for i in 0..c {
            for j in i + 1..c {
                let reconfigures = match ctx.semantics {
                    TransitionSemantics::Optimistic => {
                        state[i] != usize::MAX && state[j] != usize::MAX && state[i] != state[j]
                    }
                    // Pessimistic: only same-state pairs (including both
                    // don't-care) are free.
                    TransitionSemantics::Pessimistic => state[i] != state[j],
                };
                if reconfigures {
                    per_pair[pair_index(i, j)] += g.frames;
                }
            }
        }
    }
    per_pair.into_iter().max().unwrap_or(0) as f64
}

/// Comparison key: feasible states first (ordered by time, then area),
/// infeasible states ordered by how far over budget they are (so greedy
/// descends towards feasibility fastest), then time. Ordered by
/// `f64::total_cmp` so weighted costs sort deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(u8, f64, f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(self.1.total_cmp(&other.1)).then(self.2.total_cmp(&other.2))
    }
}

fn state_key(area: Resources, time: f64, budget: &Resources) -> Key {
    if area.fits_in(budget) {
        Key(0, time, area.total_primitives() as f64)
    } else {
        let overflow = frames_for(&area.saturating_sub(*budget));
        Key(1, overflow as f64, time)
    }
}

/// `(area, time)` of `b` is no better on either axis than `a`, and
/// strictly worse on at least one. Area dominance is component-wise
/// (CLB/BRAM/DSP), not a scalar collapse.
fn dominates(a: &(Resources, f64), b: &(Resources, f64)) -> bool {
    a.0.fits_in(&b.0) && a.1 <= b.1 && (a.0 != b.0 || a.1 < b.1)
}

/// The non-dominated frontier of visited `(area, time)` points. Checking
/// a candidate against the frontier is equivalent to checking it against
/// every visited state (dominance is transitive), and keeps the archive
/// small.
struct ParetoArchive {
    points: Vec<(Resources, f64)>,
}

/// Archive size guard for pathological fronts; past it, new points are
/// not recorded (pruning stays sound — only less aggressive).
const ARCHIVE_CAP: usize = 256;

impl ParetoArchive {
    fn new() -> ParetoArchive {
        ParetoArchive { points: Vec::new() }
    }

    fn dominates(&self, point: &(Resources, f64)) -> bool {
        self.points.iter().any(|p| dominates(p, point))
    }

    fn insert(&mut self, point: (Resources, f64)) {
        if self.dominates(&point) {
            return;
        }
        self.points.retain(|p| !dominates(&point, p));
        if self.points.len() < ARCHIVE_CAP {
            self.points.push(point);
        }
    }
}

/// Cap on retained Pareto points (they rarely exceed a handful).
const PARETO_CAP: usize = 32;

/// Best-so-far tracker across candidate sets, including the time/area
/// Pareto front of feasible states.
struct Best {
    scheme: Option<Scheme>,
    time: f64,
    area: u64,
    /// Non-dominated (time, area, scheme) points.
    pareto: Vec<(f64, u64, Scheme)>,
}

impl Best {
    fn new() -> Best {
        Best { scheme: None, time: f64::INFINITY, area: u64::MAX, pareto: Vec::new() }
    }

    fn consider(&mut self, ctx: &Ctx<'_>, state: &State) {
        if !state.fits(&ctx.budget) {
            return;
        }
        let area = state.area.total_primitives();
        let improved = self.scheme.is_none()
            || state.time < self.time
            || (state.time == self.time && area < self.area);
        if improved {
            self.scheme = Some(state.to_scheme(ctx));
            self.time = state.time;
            self.area = area;
        }
        let archived = self.pareto_insert(state.time, area, || state.to_scheme(ctx));
        if cfg!(debug_assertions) && (improved || archived) {
            ctx.debug_audit(state);
        }
    }

    /// Pareto maintenance: drop if dominated; evict what it dominates.
    /// Returns whether the point entered the archive.
    fn pareto_insert(&mut self, time: f64, area: u64, make: impl FnOnce() -> Scheme) -> bool {
        let dominated = self
            .pareto
            .iter()
            .any(|(t, a, _)| *t <= time && *a <= area && (*t < time || *a < area));
        if !dominated && !self.pareto.iter().any(|(t, a, _)| *t == time && *a == area) {
            self.pareto.retain(|(t, a, _)| !(time <= *t && area <= *a));
            if self.pareto.len() < PARETO_CAP {
                self.pareto.push((time, area, make()));
                return true;
            }
        }
        false
    }

    /// Folds another tracker in. Merging per-unit trackers in unit order
    /// replays the strict-improvement rule and the Pareto maintenance in
    /// the sequential visiting order, so the result is identical to one
    /// accumulator having seen every state in sequence.
    fn merge(&mut self, other: Best) {
        if let Some(scheme) = other.scheme {
            if self.scheme.is_none()
                || other.time < self.time
                || (other.time == self.time && other.area < self.area)
            {
                self.scheme = Some(scheme);
                self.time = other.time;
                self.area = other.area;
            }
        }
        for (time, area, scheme) in other.pareto {
            self.pareto_insert(time, area, || scheme);
        }
    }

    fn into_evaluated(
        self,
        design: &Design,
        budget: &Resources,
        semantics: TransitionSemantics,
    ) -> (Option<EvaluatedScheme>, Vec<EvaluatedScheme>) {
        let eval = |scheme: Scheme| {
            let metrics = scheme.metrics(design.static_overhead(), budget, semantics);
            debug_assert!(metrics.fits);
            EvaluatedScheme { scheme, metrics }
        };
        let mut pareto = self.pareto;
        pareto.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let front: Vec<EvaluatedScheme> = pareto.into_iter().map(|(_, _, s)| eval(s)).collect();
        (self.scheme.map(eval), front)
    }
}

/// Greedy descent from `state`, evaluating every state along the path.
/// The state is mutated in place through an undo stack and restored to
/// its entry value before returning — no per-move clones.
///
/// `visited` is a transposition cut: the continuation of a descent is a
/// pure function of the current state, so reaching a state some earlier
/// descent sharing the same set already walked means the rest of this
/// path is an exact replay — it is cut short (counted in
/// `states_pruned`) without changing the best scheme, the Pareto front,
/// or any tie-break.
fn greedy_descent(
    ctx: &Ctx<'_>,
    state: &mut State,
    best: &mut Best,
    stats: &mut SearchStats,
    visited: &mut HashSet<StateKey>,
) {
    let mut undos: Vec<UndoMove> = Vec::new();
    loop {
        if !visited.insert(state.canonical_key()) {
            stats.states_pruned += 1;
            break;
        }
        let stop = ctx.note_state(stats);
        best.consider(ctx, state);
        if stop {
            break;
        }
        let moves = state.moves(ctx);
        if moves.is_empty() {
            break;
        }
        let scored = moves.into_iter().map(|m| {
            let (area, time) = state.preview(ctx, m);
            (state_key(area, time, &ctx.budget), m)
        });
        // `moves` was checked non-empty above, but spell the empty case
        // out instead of panicking on it.
        let Some((key, mv)) = scored.min_by(|(a, _), (b, _)| a.cmp(b)) else {
            break;
        };
        // Once feasible, stop when no move strictly improves time.
        if state.fits(&ctx.budget) && (key.0 != 0 || key.1 >= state.time) {
            break;
        }
        undos.push(state.apply_mut(ctx, mv));
        ctx.obs.undo_depth_max.record_max(undos.len() as i64);
    }
    while let Some(u) = undos.pop() {
        state.undo(u);
    }
}

/// The paper's restart scheme, sliced into chunks: one descent per
/// distinct first move, best first moves tried first; this call runs the
/// restarts `[chunk*RESTART_CHUNK, (chunk+1)*RESTART_CHUNK)` of that
/// order. Restarts within a chunk share one visited-state set, so a
/// descent that converges onto a path an earlier restart in the same
/// chunk already walked is cut at the junction instead of replaying the
/// identical tail. The set is chunk-local, so every chunk prunes
/// identically no matter how chunks are spread over threads.
fn greedy_restart_chunk(
    ctx: &Ctx<'_>,
    state: &mut State,
    max_first_moves: usize,
    chunk: usize,
    best: &mut Best,
    stats: &mut SearchStats,
) {
    if chunk == 0 {
        let stop = ctx.note_state(stats);
        best.consider(ctx, state);
        if stop {
            return;
        }
    }
    let mut scored: Vec<(Key, Move)> = state
        .moves(ctx)
        .into_iter()
        .map(|m| {
            let (area, time) = state.preview(ctx, m);
            (state_key(area, time, &ctx.budget), m)
        })
        .collect();
    scored.sort_by_key(|&(k, _)| k);
    scored.truncate(max_first_moves.max(1));
    let start = chunk * RESTART_CHUNK;
    let mut visited: HashSet<StateKey> = HashSet::new();
    for &(_, mv) in scored.iter().skip(start).take(RESTART_CHUNK) {
        if ctx.clock.tripped() {
            break;
        }
        let undo = state.apply_mut(ctx, mv);
        greedy_descent(ctx, state, best, stats, &mut visited);
        state.undo(undo);
    }
}

/// Beam search (extension). The visited set is keyed by the canonical
/// state structure (collision-free); a child strictly dominated by the
/// visited frontier is still scored for best/Pareto bookkeeping but
/// never expanded further.
fn beam(ctx: &Ctx<'_>, initial: State, width: usize, best: &mut Best, stats: &mut SearchStats) {
    let width = width.max(1);
    let stop = ctx.note_state(stats);
    best.consider(ctx, &initial);
    if stop {
        return;
    }
    let mut archive = ParetoArchive::new();
    archive.insert((initial.area, initial.time));
    let mut frontier = vec![initial];
    let max_depth = ctx.pool.len() + 1;
    let mut seen: HashSet<StateKey> = HashSet::new();
    for _ in 0..max_depth {
        let mut children: Vec<(State, Key)> = Vec::new();
        for s in &frontier {
            for mv in s.moves(ctx) {
                if ctx.clock.tripped() {
                    return;
                }
                let child = s.apply(ctx, mv);
                if !seen.insert(child.canonical_key()) {
                    continue;
                }
                let stop = ctx.note_state(stats);
                best.consider(ctx, &child);
                if stop {
                    return;
                }
                let point = (child.area, child.time);
                if archive.dominates(&point) {
                    stats.states_pruned += 1;
                    continue;
                }
                archive.insert(point);
                let key = state_key(child.area, child.time, &ctx.budget);
                children.push((child, key));
            }
        }
        if children.is_empty() {
            break;
        }
        children.sort_by_key(|&(_, k)| k);
        children.truncate(width);
        frontier = children.into_iter().map(|(s, _)| s).collect();
    }
}

/// Scalar energy for annealing: total time plus a large penalty per
/// overflow frame so feasibility dominates.
fn energy(state: &State, budget: &Resources) -> f64 {
    let overflow = frames_for(&state.area.saturating_sub(*budget)) as f64;
    state.time + overflow * 1e4
}

/// Simulated annealing (comparator, paper related work [7]): random
/// merge / split / promote / demote proposals under a geometric cooling
/// schedule. Deterministic per seed.
fn annealing(
    ctx: &Ctx<'_>,
    initial: State,
    iterations: usize,
    seed: u64,
    best: &mut Best,
    stats: &mut SearchStats,
) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = initial;
    let stop = ctx.note_state(stats);
    best.consider(ctx, &state);
    if stop {
        return;
    }

    let e0 = energy(&state, &ctx.budget).max(1.0);
    let t_start = e0 * 0.05;
    let t_end = e0 * 1e-5;
    let iterations = iterations.max(1);
    let decay = (t_end / t_start).powf(1.0 / iterations as f64);
    let mut temperature = t_start;

    for _ in 0..iterations {
        if ctx.clock.tripped() {
            return;
        }
        temperature *= decay;
        let proposal: Option<State> = match rng.random_range(0u8..4) {
            // Merge a random compatible pair.
            0 => {
                let pairs: Vec<(usize, usize)> = (0..state.groups.len())
                    .flat_map(|i| ((i + 1)..state.groups.len()).map(move |j| (i, j)))
                    .filter(|&(i, j)| state.groups[i].mask.is_disjoint(&state.groups[j].mask))
                    .collect();
                if pairs.is_empty() {
                    None
                } else {
                    let (i, j) = pairs[rng.random_range(0..pairs.len())];
                    Some(state.apply(ctx, Move::Merge(i, j)))
                }
            }
            // Promote a random region to static.
            1 if ctx.allow_static && !state.groups.is_empty() => {
                let i = rng.random_range(0..state.groups.len());
                Some(state.apply(ctx, Move::Promote(i)))
            }
            // Demote a random static partition back to its own region.
            2 if !state.statics.is_empty() => {
                let k = rng.random_range(0..state.statics.len());
                let mut next = state.clone();
                let p = next.statics.swap_remove(k);
                next.static_res = next.static_res.saturating_sub(ctx.pool[p].resources);
                next.groups.push(Group::new(ctx, vec![p]));
                next.recompute_totals(ctx);
                Some(next)
            }
            // Split a random multi-partition region in two.
            _ => {
                let splittable: Vec<usize> = (0..state.groups.len())
                    .filter(|&i| state.groups[i].members.len() >= 2)
                    .collect();
                if splittable.is_empty() {
                    None
                } else {
                    let gi = splittable[rng.random_range(0..splittable.len())];
                    let members = state.groups[gi].members.clone();
                    let cut = rng.random_range(1..members.len());
                    let mut next = state.clone();
                    next.groups.swap_remove(gi);
                    next.groups.push(Group::new(ctx, members[..cut].to_vec()));
                    next.groups.push(Group::new(ctx, members[cut..].to_vec()));
                    next.recompute_totals(ctx);
                    Some(next)
                }
            }
        };
        let Some(candidate) = proposal else { continue };
        let stop = ctx.note_state(stats);
        let de = energy(&candidate, &ctx.budget) - energy(&state, &ctx.budget);
        let accept = de <= 0.0 || rng.random_range(0.0..1.0) < (-de / temperature).exp();
        if accept {
            best.consider(ctx, &candidate);
            state = candidate;
        }
        if stop {
            return;
        }
    }
}

/// Exhaustive oracle: restricted-growth enumeration of all compatible
/// groupings, each followed by greedy static promotion.
fn exhaustive(ctx: &Ctx<'_>, best: &mut Best, stats: &mut SearchStats) {
    let n = ctx.pool.len();
    let mut assignment: Vec<Vec<usize>> = Vec::new();
    rec(ctx, 0, n, &mut assignment, best, stats);

    fn rec(
        ctx: &Ctx<'_>,
        idx: usize,
        n: usize,
        groups: &mut Vec<Vec<usize>>,
        best: &mut Best,
        stats: &mut SearchStats,
    ) {
        if ctx.clock.tripped() {
            return;
        }
        if idx == n {
            let state = build_state(ctx, groups);
            let stop = ctx.note_state(stats);
            best.consider(ctx, &state);
            if stop {
                return;
            }
            if ctx.allow_static {
                promote_greedily(ctx, state, best, stats);
            }
            return;
        }
        for g in 0..groups.len() {
            let ok = groups[g].iter().all(|&p| ctx.pool[p].compatible_with(&ctx.pool[idx]));
            if ok {
                groups[g].push(idx);
                rec(ctx, idx + 1, n, groups, best, stats);
                groups[g].pop();
            }
        }
        groups.push(vec![idx]);
        rec(ctx, idx + 1, n, groups, best, stats);
        groups.pop();
    }

    fn build_state(ctx: &Ctx<'_>, groups: &[Vec<usize>]) -> State {
        let gs: Vec<Group> = groups.iter().map(|g| Group::new(ctx, g.clone())).collect();
        let mut s = State {
            groups: gs,
            statics: Vec::new(),
            static_res: Resources::ZERO,
            time: 0.0,
            area: Resources::ZERO,
        };
        s.recompute_totals(ctx);
        s
    }

    /// Promote regions one at a time while it helps: prefer promotions
    /// that reduce time and keep the state feasible (or reduce overflow).
    fn promote_greedily(ctx: &Ctx<'_>, mut state: State, best: &mut Best, stats: &mut SearchStats) {
        loop {
            let mut improved = false;
            let mut best_mv: Option<(Key, Move)> = None;
            for i in 0..state.groups.len() {
                let mv = Move::Promote(i);
                let (area, time) = state.preview(ctx, mv);
                let key = state_key(area, time, &ctx.budget);
                if key < state_key(state.area, state.time, &ctx.budget)
                    && best_mv.as_ref().is_none_or(|(k, _)| key < *k)
                {
                    best_mv = Some((key, mv));
                }
            }
            if let Some((_, mv)) = best_mv {
                state.apply_mut(ctx, mv);
                let stop = ctx.note_state(stats);
                best.consider(ctx, &state);
                if stop {
                    return;
                }
                improved = true;
            }
            if !improved {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_design::corpus;

    fn abc_budget() -> Resources {
        // Tight enough that the fully separate assignment (~1710 CLBs /
        // 24 BRAMs / 32 DSPs in tiles) does not fit, loose enough that a
        // per-module-style grouping (~1050 / 20 / 24) does.
        Resources::new(1100, 20, 24)
    }

    #[test]
    fn abc_partition_finds_a_feasible_scheme() {
        let d = corpus::abc_example();
        let out = Partitioner::new(abc_budget()).partition(&d).unwrap();
        let best = out.best.expect("a feasible scheme exists");
        assert!(best.metrics.fits);
        best.scheme.validate(&d).unwrap();
        assert!(out.states_evaluated > 0);
        assert!(out.candidate_sets_explored >= 1);
    }

    #[test]
    fn infeasible_budget_errors_up_front() {
        let d = corpus::abc_example();
        let err = Partitioner::new(Resources::new(10, 0, 0)).partition(&d).unwrap_err();
        assert!(matches!(err, PartitionError::Infeasible { .. }));
    }

    #[test]
    fn huge_budget_recovers_static_equivalent() {
        // With unconstrained area the best scheme is the zero-time
        // starting point (or a static promotion of it).
        let d = corpus::abc_example();
        let out = Partitioner::new(Resources::new(100_000, 1_000, 1_000)).partition(&d).unwrap();
        let best = out.best.unwrap();
        assert_eq!(best.metrics.total_frames, 0);
    }

    #[test]
    fn proposed_beats_or_matches_baselines_on_case_study() {
        // Table IV: the proposed scheme's total reconfiguration time is
        // below the one-module-per-region baseline and far below the
        // single-region scheme.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let out = Partitioner::new(budget).partition(&d).unwrap();
        let best = out.best.expect("case study is feasible");
        best.scheme.validate(&d).unwrap();

        let matrix = ConnectivityMatrix::from_design(&d);
        let base = crate::baselines::evaluate_baselines(
            &d,
            &matrix,
            &budget,
            TransitionSemantics::Optimistic,
        );
        assert!(
            best.metrics.total_frames <= base.per_module.metrics.total_frames,
            "proposed {} vs per-module {}",
            best.metrics.total_frames,
            base.per_module.metrics.total_frames
        );
        assert!(best.metrics.total_frames < base.single_region.metrics.total_frames);
        assert!(best.metrics.resources.fits_in(&budget));
    }

    #[test]
    fn modified_configs_use_static_promotion() {
        // Table V's solution moves modes into the static region; with
        // promotion enabled the search must do at least as well as
        // without.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Modified);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let with = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let without = Partitioner::new(budget)
            .without_static_promotion()
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert!(with.metrics.total_frames <= without.metrics.total_frames);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_design() {
        let d = corpus::abc_example();
        let budget = abc_budget();
        let greedy = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let exact = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Exhaustive { max_partitions: 10, max_candidate_sets: 3 })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        // The oracle can only be better or equal.
        assert!(exact.metrics.total_frames <= greedy.metrics.total_frames);
        // And greedy should be within a small factor on this toy design.
        assert!(greedy.metrics.total_frames <= exact.metrics.total_frames.max(1) * 3);
    }

    #[test]
    fn beam_is_no_worse_than_plain_greedy_descent() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let narrow = Partitioner::new(budget)
            .with_strategy(SearchStrategy::GreedyRestarts {
                max_candidate_sets: 1,
                max_first_moves: 1,
            })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        let beam = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Beam { width: 8, max_candidate_sets: 1 })
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert!(beam.metrics.total_frames <= narrow.metrics.total_frames);
    }

    #[test]
    fn worst_case_objective_reduces_worst_frames() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let by_total = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let by_worst = Partitioner::new(budget)
            .with_objective(Objective::WorstCase)
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        by_worst.scheme.validate(&d).unwrap();
        assert!(
            by_worst.metrics.worst_frames <= by_total.metrics.worst_frames,
            "worst-case search {} vs total-time search {}",
            by_worst.metrics.worst_frames,
            by_total.metrics.worst_frames
        );
        // The trade-off is real: the worst-case optimum may pay more
        // total time, but never more worst case.
    }

    #[test]
    fn worst_case_objective_on_degenerate_design_is_zero() {
        use prpart_design::DesignBuilder;
        let d = DesignBuilder::new("mono")
            .module("A", [("a", Resources::new(50, 0, 0))])
            .module("B", [("b", Resources::new(60, 0, 0))])
            .configuration("only", [("A", "a"), ("B", "b")])
            .build()
            .unwrap();
        let best = Partitioner::new(Resources::new(300, 8, 8))
            .with_objective(Objective::WorstCase)
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert_eq!(best.metrics.worst_frames, 0);
    }

    #[test]
    fn repartition_on_identical_design_is_no_worse() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let p = Partitioner::new(budget);
        let fresh = p.partition(&d).unwrap().best.unwrap();
        let again = p.repartition(&d, &d, &fresh.scheme).unwrap().best.unwrap();
        assert!(again.metrics.total_frames <= fresh.metrics.total_frames);
        again.scheme.validate(&d).unwrap();
    }

    #[test]
    fn repartition_survives_design_edits() {
        use prpart_design::DesignBuilder;
        // Original: the case study. Edited: the Video module loses JPEG
        // and gains a new AV1 mode; one configuration changes.
        let original = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let previous = Partitioner::new(budget).partition(&original).unwrap().best.unwrap().scheme;

        let mut b = DesignBuilder::new("video-edited");
        for m in original.modules() {
            let modes: Vec<(&str, Resources)> = m
                .modes
                .iter()
                .filter(|k| k.name != "JPEG")
                .map(|k| (k.name.as_str(), k.resources))
                .collect();
            if m.name == "Video" {
                let mut modes = modes;
                modes.push(("AV1", Resources::new(3500, 24, 40)));
                b = b.module(&m.name, modes);
            } else {
                b = b.module(&m.name, modes);
            }
        }
        for (ci, conf) in original.configurations().iter().enumerate() {
            let picks: Vec<(String, String)> = conf
                .selection
                .iter()
                .enumerate()
                .filter_map(|(mi, sel)| {
                    sel.map(|ki| {
                        let module = &original.modules()[mi];
                        let mode = &module.modes[ki as usize].name;
                        let mode = if mode == "JPEG" { "AV1" } else { mode };
                        (module.name.clone(), mode.to_string())
                    })
                })
                .collect();
            let refs: Vec<(&str, &str)> =
                picks.iter().map(|(a, c)| (a.as_str(), c.as_str())).collect();
            b = b.configuration(&format!("c{ci}"), refs);
        }
        let edited = b.build().unwrap();

        let p = Partitioner::new(budget);
        let re = p.repartition(&edited, &original, &previous).unwrap().best.unwrap();
        re.scheme.validate(&edited).unwrap();
        // And never worse than partitioning from scratch (the fresh
        // pipeline also runs inside repartition).
        let fresh = p.partition(&edited).unwrap().best.unwrap();
        assert!(re.metrics.total_frames <= fresh.metrics.total_frames);
    }

    #[test]
    fn annealing_finds_feasible_schemes() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let sa = Partitioner::new(budget)
            .with_strategy(SearchStrategy::Annealing {
                iterations: 4000,
                seed: 7,
                max_candidate_sets: 2,
            })
            .partition(&d)
            .unwrap();
        let best = sa.best.expect("annealing finds a feasible scheme");
        best.scheme.validate(&d).unwrap();
        // Within 25% of the greedy result (it is a comparator, not the
        // production strategy).
        let greedy = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        assert!(
            best.metrics.total_frames <= greedy.metrics.total_frames * 5 / 4,
            "annealing {} vs greedy {}",
            best.metrics.total_frames,
            greedy.metrics.total_frames
        );
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let d = corpus::abc_example();
        let budget = abc_budget();
        let run = |seed| {
            Partitioner::new(budget)
                .with_strategy(SearchStrategy::Annealing {
                    iterations: 1500,
                    seed,
                    max_candidate_sets: 1,
                })
                .partition(&d)
                .unwrap()
                .best
                .map(|b| b.metrics.total_frames)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn outcome_schemes_always_validate() {
        for set in [corpus::VideoConfigSet::Original, corpus::VideoConfigSet::Modified] {
            let d = corpus::video_receiver(set);
            let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
            if let Some(best) = out.best {
                best.scheme.validate(&d).unwrap();
                assert!(best.metrics.fits);
            }
        }
    }

    #[test]
    fn pareto_front_is_nondominated_and_contains_best() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
        let best = out.best.unwrap();
        let front = &out.pareto_front;
        assert!(!front.is_empty());
        // Sorted by ascending time; the head is the best scheme.
        assert_eq!(front[0].metrics.total_frames, best.metrics.total_frames);
        for w in front.windows(2) {
            assert!(w[0].metrics.total_frames <= w[1].metrics.total_frames);
            // Later points pay more time, so they must save area.
            assert!(
                w[1].metrics.resources.total_primitives()
                    < w[0].metrics.resources.total_primitives()
                    || w[1].metrics.total_frames == w[0].metrics.total_frames
            );
        }
        // No point dominates another.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dom = a.metrics.total_frames <= b.metrics.total_frames
                        && a.metrics.resources.total_primitives()
                            <= b.metrics.resources.total_primitives()
                        && (a.metrics.total_frames < b.metrics.total_frames
                            || a.metrics.resources.total_primitives()
                                < b.metrics.resources.total_primitives());
                    assert!(!dom, "front point {i} dominates {j}");
                }
            }
        }
        for p in front {
            p.scheme.validate(&d).unwrap();
        }
    }

    #[test]
    fn uniform_weights_match_unweighted_search() {
        // With all-ones weights the weighted objective is exactly Eq. 10,
        // so the search must find a scheme of the same total cost.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let plain = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let weighted = Partitioner::new(budget)
            .with_transition_weights(TransitionWeights::uniform(d.num_configurations()))
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        assert_eq!(plain.metrics.total_frames, weighted.metrics.total_frames);
    }

    #[test]
    fn skewed_weights_change_the_objective() {
        // Weight one transition overwhelmingly: the weighted-optimal
        // scheme must make that transition at least as cheap as the
        // unweighted optimum does.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let n = d.num_configurations();
        let mut w = TransitionWeights::zero(n);
        for i in 0..n {
            for j in i + 1..n {
                w.set(i, j, 0.01);
            }
        }
        // The expensive hop in the case study: c1 (V1) -> c3 (V3).
        w.set(0, 2, 1000.0);
        let plain = Partitioner::new(budget).partition(&d).unwrap().best.unwrap();
        let weighted = Partitioner::new(budget)
            .with_transition_weights(w.clone())
            .partition(&d)
            .unwrap()
            .best
            .unwrap();
        let sem = TransitionSemantics::Optimistic;
        let plain_obj = plain.scheme.weighted_total(&w, sem);
        let weighted_obj = weighted.scheme.weighted_total(&w, sem);
        assert!(
            weighted_obj <= plain_obj + 1e-9,
            "weighted search ({weighted_obj}) must not lose to plain ({plain_obj}) on its own objective"
        );
    }

    #[test]
    fn wrong_weight_dimension_is_rejected() {
        let d = corpus::abc_example();
        let err = Partitioner::new(abc_budget())
            .with_transition_weights(TransitionWeights::uniform(3))
            .partition(&d)
            .unwrap_err();
        assert!(matches!(err, PartitionError::WeightsDimension { expected: 5, got: 3 }));
    }

    #[test]
    fn special_case_design_partitions() {
        let d = corpus::special_case_single_mode();
        // Budget that cannot hold every module in its own region
        // (~2050 CLBs) but admits cross-configuration sharing (~1350).
        let budget = Resources::new(1400, 16, 24);
        let out = Partitioner::new(budget).partition(&d).unwrap();
        let best = out.best.expect("feasible");
        best.scheme.validate(&d).unwrap();
        assert!(best.metrics.resources.fits_in(&budget));
    }

    // ---- parallel / incremental engine --------------------------------

    /// Full textual fingerprint of an outcome: scheme structure, metrics,
    /// Pareto front and search statistics.
    fn fingerprint(d: &Design, out: &PartitionOutcome) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        if let Some(b) = &out.best {
            write!(
                s,
                "best total={} worst={} res={:?}\n{}",
                b.metrics.total_frames,
                b.metrics.worst_frames,
                b.metrics.resources,
                b.scheme.describe(d)
            )
            .unwrap();
        }
        for p in &out.pareto_front {
            writeln!(s, "front {} {:?}", p.metrics.total_frames, p.metrics.resources).unwrap();
        }
        writeln!(
            s,
            "sets={} states={} pruned={}",
            out.candidate_sets_explored, out.states_evaluated, out.states_pruned
        )
        .unwrap();
        s
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        for d in [corpus::abc_example(), corpus::video_receiver(corpus::VideoConfigSet::Original)] {
            let budget =
                if d.num_modes() == 8 { abc_budget() } else { corpus::VIDEO_RECEIVER_BUDGET };
            let baseline =
                fingerprint(&d, &Partitioner::new(budget).with_threads(1).partition(&d).unwrap());
            for threads in [0, 2, 8] {
                let out = Partitioner::new(budget).with_threads(threads).partition(&d).unwrap();
                assert_eq!(fingerprint(&d, &out), baseline, "threads={threads} diverged");
            }
        }
    }

    #[test]
    fn apply_mut_then_undo_restores_the_state_exactly() {
        // Walk the move tree two plies deep from the initial state of the
        // case-study pool, undoing every application; the state must be
        // bit-identical to its snapshot at every unwind.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let p = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET);
        let matrix = ConnectivityMatrix::from_design(&d);
        let parts = generate_base_partitions(&d, &matrix, DEFAULT_CLIQUE_LIMIT).unwrap();
        let sets: Vec<Vec<usize>> = CandidateSets::new(&matrix, &parts).take(1).collect();
        let pool: Vec<BasePartition> = sets[0].iter().map(|&i| parts[i].clone()).collect();
        let clock = BudgetClock::unarmed();
        let sobs = SearchObs::default();
        let ctx = p.make_ctx(&d, &pool, &clock, &sobs);
        let mut state = State::initial(&ctx);

        fn snapshot(s: &State) -> (StateKey, u64, Resources, Resources) {
            (s.canonical_key(), s.time.to_bits(), s.area, s.static_res)
        }
        let top = snapshot(&state);
        for mv in state.moves(&ctx) {
            let undo = state.apply_mut(&ctx, mv);
            let mid = snapshot(&state);
            for mv2 in state.moves(&ctx) {
                let undo2 = state.apply_mut(&ctx, mv2);
                state.undo(undo2);
                assert_eq!(snapshot(&state), mid, "inner undo of {mv2:?} drifted");
            }
            state.undo(undo);
            assert_eq!(snapshot(&state), top, "outer undo of {mv:?} drifted");
        }
    }

    #[test]
    fn incremental_totals_match_full_recompute_along_a_descent() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let p = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET);
        let matrix = ConnectivityMatrix::from_design(&d);
        let parts = generate_base_partitions(&d, &matrix, DEFAULT_CLIQUE_LIMIT).unwrap();
        let sets: Vec<Vec<usize>> = CandidateSets::new(&matrix, &parts).take(1).collect();
        let pool: Vec<BasePartition> = sets[0].iter().map(|&i| parts[i].clone()).collect();
        let clock = BudgetClock::unarmed();
        let sobs = SearchObs::default();
        let ctx = p.make_ctx(&d, &pool, &clock, &sobs);
        let mut state = State::initial(&ctx);
        // Repeatedly take the first available move; uniform costs are
        // integers, so incremental and recomputed totals agree exactly.
        for _ in 0..pool.len() {
            let Some(&mv) = state.moves(&ctx).first() else { break };
            state.apply_mut(&ctx, mv);
            let (inc_time, inc_area) = (state.time, state.area);
            state.recompute_totals(&ctx);
            assert_eq!(inc_time, state.time);
            assert_eq!(inc_area, state.area);
        }
    }

    /// Regression for the former 64-bit-hash dedup: two structurally
    /// different states whose hashes collide once truncated must remain
    /// distinct under the canonical key. (A full 64-bit collision is
    /// infeasible to construct in a test, so the truncation models it;
    /// `StateKey` equality is content-based and immune either way.)
    #[test]
    fn canonical_key_separates_truncated_hash_collisions() {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let truncated = |k: &StateKey| -> u16 {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish() as u16
        };
        let mk = |a: usize, b: usize| StateKey {
            groups: vec![BitSet::from_iter_with_capacity(256, [a])],
            statics: BitSet::from_iter_with_capacity(256, [b]),
        };
        let mut by_hash: HashMap<u16, StateKey> = HashMap::new();
        let mut collision = None;
        'outer: for a in 0..200usize {
            for b in 0..200usize {
                if a == b {
                    continue;
                }
                let key = mk(a, b);
                if let Some(prev) = by_hash.get(&truncated(&key)) {
                    if *prev != key {
                        collision = Some((prev.clone(), key));
                        break 'outer;
                    }
                }
                by_hash.insert(truncated(&key), key);
            }
        }
        let (x, y) = collision.expect("40k keys into 65k buckets must collide");
        assert_eq!(truncated(&x), truncated(&y), "hashes collide");
        assert_ne!(x, y, "yet the canonical keys stay distinct");
        let set: HashSet<StateKey> = [x, y].into_iter().collect();
        assert_eq!(set.len(), 2, "a canonical-key visited set keeps both states");
    }

    #[test]
    fn pruning_skips_work_without_changing_the_best() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
        // The transposition cut must fire on the case study (restart
        // descents converge onto shared tails) while the golden best
        // stays locked elsewhere (tests/golden.rs).
        assert!(out.states_pruned > 0, "expected the replay cut to engage");
    }

    // ---- resilience: budgets, cancellation, panics, checkpoints -------

    use crate::budget::{CancelToken, SearchBudget, SearchOutcome};
    use crate::checkpoint::CheckpointConfig;
    use std::time::Duration;

    fn scratch_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("prpart-search-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn unbudgeted_run_reports_complete_with_full_unit_accounting() {
        let d = corpus::abc_example();
        let out = Partitioner::new(abc_budget()).partition(&d).unwrap();
        assert_eq!(out.search_outcome, SearchOutcome::Complete);
        assert!(out.search_outcome.is_complete());
        assert!(out.units_total > 0);
        assert_eq!(out.units_completed, out.units_total);
        assert_eq!(out.units_partial, 0);
        assert_eq!(out.units_skipped, 0);
        assert_eq!(out.units_resumed, 0);
        assert!(out.poisoned_units.is_empty());
    }

    #[test]
    fn zero_deadline_yields_an_anytime_result_not_an_error() {
        let d = corpus::abc_example();
        let out = Partitioner::new(abc_budget())
            .with_search_budget(SearchBudget::new().with_deadline(Duration::ZERO))
            .partition(&d)
            .unwrap();
        assert_eq!(out.search_outcome, SearchOutcome::DeadlineExceeded);
        assert_eq!(out.units_skipped, out.units_total, "nothing should run past a zero deadline");
        assert!(out.best.is_none());
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_outcome() {
        let d = corpus::abc_example();
        let token = CancelToken::new();
        token.cancel();
        let out = Partitioner::new(abc_budget())
            .with_search_budget(SearchBudget::new().with_cancel(token))
            .partition(&d)
            .unwrap();
        assert_eq!(out.search_outcome, SearchOutcome::Cancelled);
        assert_eq!(out.units_skipped, out.units_total);
    }

    #[test]
    fn state_budget_truncates_with_bounded_overshoot() {
        let d = corpus::abc_example();
        let full = Partitioner::new(abc_budget()).partition(&d).unwrap();
        let limit = 40u64;
        assert!(full.states_evaluated > limit, "limit must actually bind");
        let out = Partitioner::new(abc_budget())
            .with_threads(1)
            .with_search_budget(SearchBudget::new().with_max_states(limit))
            .partition(&d)
            .unwrap();
        assert_eq!(out.search_outcome, SearchOutcome::BudgetExhausted);
        assert!(out.states_evaluated > 0);
        // The stop is cooperative: each strategy may finish charging the
        // state in flight, so allow a small overshoot but nothing more.
        assert!(
            out.states_evaluated <= limit + 256,
            "evaluated {} states against a limit of {limit}",
            out.states_evaluated
        );
        assert!(out.units_partial + out.units_skipped > 0);
    }

    #[test]
    fn max_units_truncates_at_an_exact_unit_boundary() {
        let d = corpus::abc_example();
        let full = Partitioner::new(abc_budget()).with_threads(1).partition(&d).unwrap();
        assert!(full.units_total > 2, "need a multi-unit sweep");
        let out = Partitioner::new(abc_budget())
            .with_threads(1)
            .with_search_budget(SearchBudget::new().with_max_units(2))
            .partition(&d)
            .unwrap();
        assert_eq!(out.search_outcome, SearchOutcome::BudgetExhausted);
        assert_eq!(out.units_completed, 2);
        assert_eq!(out.units_skipped, full.units_total - 2);
        // With one thread the executed prefix is exactly units 0..2.
        assert_eq!(out.units_total, full.units_total);
    }

    #[test]
    fn injected_unit_panic_is_isolated_and_recorded() {
        let d = corpus::abc_example();
        for threads in [1, 4] {
            let out = Partitioner::new(abc_budget())
                .with_threads(threads)
                .with_injected_unit_panics(vec![0])
                .partition(&d)
                .unwrap();
            assert_eq!(out.poisoned_units.len(), 1, "threads={threads}");
            assert_eq!(out.poisoned_units[0].unit, 0);
            assert!(out.poisoned_units[0].message.contains("injected panic"));
            // The rest of the sweep survives and still finds a scheme.
            assert_eq!(out.search_outcome, SearchOutcome::Complete);
            assert_eq!(out.units_completed, out.units_total - 1);
            let best = out.best.expect("other units still find the scheme");
            best.scheme.validate(&d).unwrap();
        }
    }

    #[test]
    fn checkpointing_does_not_change_the_result_and_resume_replays_all_units() {
        let d = corpus::abc_example();
        let baseline = Partitioner::new(abc_budget()).with_threads(1).partition(&d).unwrap();
        let path = scratch_path("complete.ckpt");
        let p = Partitioner::new(abc_budget())
            .with_threads(1)
            .with_checkpoint(CheckpointConfig::new(&path).with_every(1));
        let ck = p.partition(&d).unwrap();
        assert_eq!(fingerprint(&d, &ck), fingerprint(&d, &baseline));
        // Resuming from a complete checkpoint replays every unit and
        // still produces byte-identical output.
        let resumed = p.resume_from(&d, &path).unwrap();
        assert_eq!(fingerprint(&d, &resumed), fingerprint(&d, &baseline));
        assert_eq!(resumed.units_resumed, resumed.units_total);
        assert_eq!(resumed.search_outcome, SearchOutcome::Complete);
    }

    #[test]
    fn resume_after_unit_truncation_is_byte_identical_to_uninterrupted() {
        let d = corpus::abc_example();
        let baseline = Partitioner::new(abc_budget()).with_threads(1).partition(&d).unwrap();
        let path = scratch_path("truncated.ckpt");
        let truncated = Partitioner::new(abc_budget())
            .with_threads(1)
            .with_search_budget(SearchBudget::new().with_max_units(1))
            .with_checkpoint(CheckpointConfig::new(&path).with_every(1))
            .partition(&d)
            .unwrap();
        assert_eq!(truncated.units_completed, 1);
        for threads in [1, 4] {
            let resumed = Partitioner::new(abc_budget())
                .with_threads(threads)
                .resume_from(&d, &path)
                .unwrap();
            assert_eq!(
                fingerprint(&d, &resumed),
                fingerprint(&d, &baseline),
                "threads={threads} resume diverged"
            );
            assert_eq!(resumed.units_resumed, 1);
            assert_eq!(resumed.search_outcome, SearchOutcome::Complete);
        }
    }

    #[test]
    fn mismatched_or_corrupt_checkpoints_are_rejected() {
        let d = corpus::abc_example();
        let path = scratch_path("mismatch.ckpt");
        Partitioner::new(abc_budget())
            .with_checkpoint(CheckpointConfig::new(&path))
            .partition(&d)
            .unwrap();
        // Different settings (budget) → different fingerprint.
        let err =
            Partitioner::new(Resources::new(1200, 20, 24)).resume_from(&d, &path).unwrap_err();
        match err {
            PartitionError::Checkpoint { detail, .. } => {
                assert!(detail.contains("fingerprint mismatch"), "got: {detail}")
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
        // Flipped content → CRC failure.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupt_path = scratch_path("corrupt.ckpt");
        std::fs::write(&corrupt_path, text.replacen("unit 0", "unit 1", 1)).unwrap();
        let err = Partitioner::new(abc_budget()).resume_from(&d, &corrupt_path).unwrap_err();
        assert!(matches!(err, PartitionError::Checkpoint { .. }), "got {err:?}");
    }
}
