//! Cooperative search budgets: wall-clock deadlines, state/unit limits, and
//! external cancellation.
//!
//! The region-allocation search explores a candidate-set × restart space that
//! grows combinatorially with design size. A [`SearchBudget`] bounds that
//! exploration without turning truncation into an error: when any limit trips,
//! the search stops charging new states, finishes reducing the work it has
//! already completed, and returns the certified best-so-far scheme tagged with
//! a [`SearchOutcome`] describing *why* it stopped. See `docs/resilience.md`
//! for the full semantics.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle shared between the caller and the search.
///
/// Cancelling is sticky and idempotent: once [`CancelToken::cancel`] has been
/// called, every clone observes `is_cancelled() == true` forever. The search
/// polls the token cooperatively (roughly every few dozen evaluated states),
/// so cancellation latency is bounded by the cost of a handful of state
/// evaluations, not by a whole work unit.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Safe to call from any thread, any number of
    /// times (e.g. from a Ctrl-C handler).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once [`cancel`](Self::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Limits on a single [`Partitioner::partition`](crate::Partitioner) run.
///
/// All limits are optional and independent; the default budget is unlimited.
/// Budgets bound *work*, not *results*: an exhausted budget still yields the
/// best scheme found so far (see [`SearchOutcome`]).
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    /// Wall-clock deadline measured from the start of the search.
    pub deadline: Option<Duration>,
    /// Maximum number of states to evaluate across all work units.
    pub max_states: Option<u64>,
    /// Maximum number of work units to execute (units beyond the limit are
    /// skipped and counted). With one thread this truncates the sweep at an
    /// exact, deterministic unit boundary — the lever the resume-determinism
    /// tests use.
    pub max_units: Option<usize>,
    /// External cancellation handle (e.g. wired to Ctrl-C).
    pub cancel: Option<CancelToken>,
}

impl SearchBudget {
    /// An unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a wall-clock deadline for the whole search.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the total number of evaluated states.
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = Some(max_states);
        self
    }

    /// Bounds the number of executed work units.
    pub fn with_max_units(mut self, max_units: usize) -> Self {
        self.max_units = Some(max_units);
        self
    }

    /// Attaches an external cancel token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Returns `true` when no limit is configured at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_states.is_none()
            && self.max_units.is_none()
            && self.cancel.is_none()
    }
}

/// Why a search run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchOutcome {
    /// Every work unit ran to completion.
    Complete,
    /// The wall-clock deadline expired before the sweep finished.
    DeadlineExceeded,
    /// A state or unit budget was exhausted before the sweep finished.
    BudgetExhausted,
    /// The external cancel token fired before the sweep finished.
    Cancelled,
}

impl SearchOutcome {
    /// `true` only for [`SearchOutcome::Complete`].
    pub fn is_complete(self) -> bool {
        matches!(self, SearchOutcome::Complete)
    }
}

impl std::fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            SearchOutcome::Complete => "complete",
            SearchOutcome::DeadlineExceeded => "deadline-exceeded",
            SearchOutcome::BudgetExhausted => "budget-exhausted",
            SearchOutcome::Cancelled => "cancelled",
        };
        f.write_str(text)
    }
}

/// Trip causes, ordered so the first cause to fire wins (`compare_exchange`
/// from `TRIP_NONE`).
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_STATES: u8 = 2;
const TRIP_CANCELLED: u8 = 3;

/// Shared runtime view of a [`SearchBudget`]: one clock per search run,
/// polled cooperatively by every worker.
///
/// The clock is cheap when unarmed (a single branch per charge) and cheap when
/// armed: the state counter is a relaxed atomic increment, and the expensive
/// checks (reading `Instant::now`, the cancel flag) run every
/// [`POLL_INTERVAL`] charged states.
#[derive(Debug)]
pub(crate) struct BudgetClock {
    armed: bool,
    start: Instant,
    deadline: Option<Duration>,
    max_states: Option<u64>,
    cancel: Option<CancelToken>,
    states: AtomicU64,
    tripped: AtomicU8,
}

/// How many charged states between deadline/cancel polls.
const POLL_INTERVAL: u64 = 32;

impl BudgetClock {
    /// Builds a clock for the given budget; unlimited budgets produce an
    /// unarmed clock whose checks compile down to a single branch.
    pub(crate) fn new(budget: &SearchBudget) -> Self {
        let armed =
            budget.deadline.is_some() || budget.max_states.is_some() || budget.cancel.is_some();
        Self {
            armed,
            start: Instant::now(),
            deadline: budget.deadline,
            max_states: budget.max_states,
            cancel: budget.cancel.clone(),
            states: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }

    /// A clock that never trips (used by contexts built outside a budgeted
    /// run, e.g. unit tests poking at `make_ctx` directly).
    #[cfg(test)]
    pub(crate) fn unarmed() -> Self {
        Self::new(&SearchBudget::default())
    }

    /// Records one evaluated state and polls the limits. Returns `true` when
    /// the search should stop.
    pub(crate) fn charge_state(&self) -> bool {
        if !self.armed {
            return false;
        }
        let n = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.max_states {
            if n > limit {
                self.trip(TRIP_STATES);
            }
        }
        if n.is_multiple_of(POLL_INTERVAL) {
            self.poll();
        }
        self.tripped()
    }

    /// Polls deadline and cancel token without charging a state.
    pub(crate) fn poll(&self) -> bool {
        if !self.armed {
            return false;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                self.trip(TRIP_CANCELLED);
            }
        }
        if let Some(deadline) = self.deadline {
            if self.start.elapsed() >= deadline {
                self.trip(TRIP_DEADLINE);
            }
        }
        self.tripped()
    }

    /// `true` once any limit has tripped.
    pub(crate) fn tripped(&self) -> bool {
        self.armed && self.tripped.load(Ordering::Relaxed) != TRIP_NONE
    }

    /// The outcome corresponding to the *first* limit that tripped, if any.
    pub(crate) fn trip_outcome(&self) -> Option<SearchOutcome> {
        match self.tripped.load(Ordering::SeqCst) {
            TRIP_DEADLINE => Some(SearchOutcome::DeadlineExceeded),
            TRIP_STATES => Some(SearchOutcome::BudgetExhausted),
            TRIP_CANCELLED => Some(SearchOutcome::Cancelled),
            _ => None,
        }
    }

    fn trip(&self, cause: u8) {
        // First trip wins; later causes are ignored so the reported outcome
        // names the limit that actually stopped the search.
        let _ = self.tripped.compare_exchange(TRIP_NONE, cause, Ordering::SeqCst, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_sticky_and_shared_between_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn default_budget_is_unlimited_and_never_trips() {
        let budget = SearchBudget::new();
        assert!(budget.is_unlimited());
        let clock = BudgetClock::new(&budget);
        for _ in 0..1000 {
            assert!(!clock.charge_state());
        }
        assert!(!clock.poll());
        assert_eq!(clock.trip_outcome(), None);
    }

    #[test]
    fn state_budget_trips_after_the_limit() {
        let clock = BudgetClock::new(&SearchBudget::new().with_max_states(10));
        let mut stopped_at = None;
        for i in 1..=100u64 {
            if clock.charge_state() {
                stopped_at = Some(i);
                break;
            }
        }
        assert_eq!(stopped_at, Some(11));
        assert_eq!(clock.trip_outcome(), Some(SearchOutcome::BudgetExhausted));
    }

    #[test]
    fn zero_deadline_trips_on_first_poll() {
        let clock = BudgetClock::new(&SearchBudget::new().with_deadline(Duration::ZERO));
        assert!(clock.poll());
        assert_eq!(clock.trip_outcome(), Some(SearchOutcome::DeadlineExceeded));
    }

    #[test]
    fn cancelled_token_trips_and_first_cause_wins() {
        let token = CancelToken::new();
        token.cancel();
        let clock =
            BudgetClock::new(&SearchBudget::new().with_deadline(Duration::ZERO).with_cancel(token));
        assert!(clock.poll());
        // Cancel is checked before the deadline inside poll(), so it is the
        // first cause recorded even though both limits are expired.
        assert_eq!(clock.trip_outcome(), Some(SearchOutcome::Cancelled));
        assert_eq!(clock.trip_outcome(), Some(SearchOutcome::Cancelled));
    }

    #[test]
    fn outcome_display_is_stable() {
        assert_eq!(SearchOutcome::Complete.to_string(), "complete");
        assert_eq!(SearchOutcome::DeadlineExceeded.to_string(), "deadline-exceeded");
        assert_eq!(SearchOutcome::BudgetExhausted.to_string(), "budget-exhausted");
        assert_eq!(SearchOutcome::Cancelled.to_string(), "cancelled");
        assert!(SearchOutcome::Complete.is_complete());
        assert!(!SearchOutcome::Cancelled.is_complete());
    }
}
