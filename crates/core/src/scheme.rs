//! Partitioning schemes and the reconfiguration-time cost model
//! (paper Eqs. 2–11).
//!
//! A [`Scheme`] assigns a pool of [`BasePartition`]s to reconfigurable
//! regions (each region hosting one of its partitions at a time) and,
//! optionally, to the static region (always present, never reconfigured).
//!
//! **Region area** (Eq. 2–6): a region is sized by the element-wise
//! maximum of its partitions' requirements, then quantised up to whole
//! tiles; its reconfiguration cost is the frame count of those tiles.
//!
//! **Region state:** in configuration *c*, a region's active partition is
//! the unique member whose presence mask contains *c* (pairwise
//! compatibility guarantees uniqueness); a region no configuration touches
//! is *don't-care* there.
//!
//! **Total reconfiguration time** (Eqs. 7–10): the sum over all unordered
//! configuration pairs of the frames written, where a region contributes
//! its full frame count whenever its state differs between the two
//! configurations. **Worst-case time** (Eq. 11) is the maximum over pairs.
//! [`TransitionSemantics`] selects how don't-care states are charged (see
//! DESIGN.md §5 and ablation A3).

use crate::partition::BasePartition;
use prpart_arch::{Resources, TileCounts};
use prpart_design::Design;
use std::fmt;

/// How a region with no active partition in one of the two configurations
/// of a transition is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransitionSemantics {
    /// The paper's literal reading of Eq. 8: a region reconfigures only
    /// when it "contains different base partitions in configuration i and
    /// configuration j" — both states defined and different. A don't-care
    /// endpoint keeps the region's previous contents at no cost.
    #[default]
    Optimistic,
    /// Conservative variant: a transition into a configuration that needs
    /// a partition the region may not currently hold is charged; only
    /// same-state and both-don't-care pairs are free.
    Pessimistic,
}

/// One reconfigurable region: indices into the scheme's partition pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Pool indices of the partitions hosted by this region. All pairwise
    /// compatible; the region is sized for the largest (element-wise).
    pub partitions: Vec<usize>,
}

/// A complete partitioning: a partition pool, its grouping into regions,
/// and the pool members promoted to static logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// The candidate partition set this scheme allocates.
    pub partitions: Vec<BasePartition>,
    /// Reconfigurable regions (disjoint groups of pool indices).
    pub regions: Vec<Region>,
    /// Pool indices implemented in the static region: their modes are
    /// always present and never reconfigured; their areas *sum*.
    pub static_partitions: Vec<usize>,
    /// Number of configurations of the design (the transition space).
    pub num_configurations: usize,
}

/// Evaluated properties of a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeMetrics {
    /// Total resource requirement: tile-quantised region capacities plus
    /// static partition sums plus the design's static overhead.
    pub resources: Resources,
    /// Total reconfiguration time over all configuration pairs, in frames
    /// (Eq. 10).
    pub total_frames: u64,
    /// Worst single transition, in frames (Eq. 11).
    pub worst_frames: u64,
    /// Number of reconfigurable regions.
    pub num_regions: usize,
    /// Number of partitions promoted to static.
    pub num_static: usize,
    /// Whether `resources` fits the budget the metrics were computed
    /// against.
    pub fits: bool,
}

/// A scheme together with its metrics.
#[derive(Debug, Clone)]
pub struct EvaluatedScheme {
    /// The scheme.
    pub scheme: Scheme,
    /// Its evaluated properties.
    pub metrics: SchemeMetrics,
}

/// Violation of a scheme structural invariant (see [`Scheme::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeInvariantError {
    /// A pool partition is placed more than once (or a region repeats it).
    DuplicatePlacement(usize),
    /// Two partitions in one region are incompatible.
    IncompatibleRegion {
        /// Region index.
        region: usize,
        /// Offending pool indices.
        a: usize,
        /// Offending pool indices.
        b: usize,
    },
    /// A used mode is covered by no placed partition.
    UncoveredMode(u32),
    /// A region has no partitions.
    EmptyRegion(usize),
}

impl fmt::Display for SchemeInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeInvariantError::DuplicatePlacement(p) => {
                write!(f, "partition {p} placed more than once")
            }
            SchemeInvariantError::IncompatibleRegion { region, a, b } => {
                write!(f, "region {region} hosts incompatible partitions {a} and {b}")
            }
            SchemeInvariantError::UncoveredMode(m) => write!(f, "mode {m} is uncovered"),
            SchemeInvariantError::EmptyRegion(r) => write!(f, "region {r} is empty"),
        }
    }
}

impl std::error::Error for SchemeInvariantError {}

impl Scheme {
    /// The search's starting point: every pool partition in its own
    /// region. Equivalent to a static implementation — nothing ever
    /// reconfigures — with maximal area (paper §IV-C).
    pub fn one_region_per_partition(
        partitions: Vec<BasePartition>,
        num_configurations: usize,
    ) -> Self {
        let regions = (0..partitions.len()).map(|i| Region { partitions: vec![i] }).collect();
        Scheme { partitions, regions, static_partitions: Vec::new(), num_configurations }
    }

    /// Builds a scheme from `(module, mode)` *names*: one singleton
    /// partition per named mode, grouped into regions as given, plus the
    /// named static modes. This is the safe entry point for schemes that
    /// outlive the design they were written against (config files, saved
    /// reports): a renamed or removed mode surfaces as
    /// [`PartitionError::UnknownMode`] instead of a panic.
    pub fn from_named_groups(
        design: &Design,
        groups: &[&[(&str, &str)]],
        statics: &[(&str, &str)],
    ) -> Result<Scheme, crate::error::PartitionError> {
        let matrix = prpart_design::ConnectivityMatrix::from_design(design);
        let resolve = |module: &str, mode: &str| {
            design.mode_id(module, mode).ok_or_else(|| crate::error::PartitionError::UnknownMode {
                module: module.to_string(),
                mode: mode.to_string(),
            })
        };
        let mut partitions = Vec::new();
        let mut regions = Vec::new();
        for group in groups {
            let mut idxs = Vec::new();
            for &(module, mode) in *group {
                let g = resolve(module, mode)?;
                idxs.push(partitions.len());
                partitions.push(BasePartition::from_modes(design, &matrix, vec![g]));
            }
            regions.push(Region { partitions: idxs });
        }
        let mut static_partitions = Vec::new();
        for &(module, mode) in statics {
            let g = resolve(module, mode)?;
            static_partitions.push(partitions.len());
            partitions.push(BasePartition::from_modes(design, &matrix, vec![g]));
        }
        Ok(Scheme {
            partitions,
            regions,
            static_partitions,
            num_configurations: design.num_configurations(),
        })
    }

    /// Raw (un-quantised) requirement of region `r`: element-wise maximum
    /// over its partitions (Eq. 2).
    pub fn region_resources(&self, r: usize) -> Resources {
        self.regions[r]
            .partitions
            .iter()
            .map(|&p| self.partitions[p].resources)
            .fold(Resources::ZERO, Resources::max)
    }

    /// Tile counts of region `r` (Eqs. 3–5).
    pub fn region_tiles(&self, r: usize) -> TileCounts {
        TileCounts::for_resources(&self.region_resources(r))
    }

    /// Reconfiguration cost of region `r` in frames (Eq. 6).
    pub fn region_frames(&self, r: usize) -> u64 {
        self.region_tiles(r).frames()
    }

    /// Summed requirement of the static partitions (their modes are all
    /// concurrently implemented).
    pub fn static_resources(&self) -> Resources {
        self.static_partitions.iter().map(|&p| self.partitions[p].resources).sum()
    }

    /// Total resource requirement: tile-quantised region capacities, plus
    /// static partitions, plus the design's static overhead.
    pub fn total_resources(&self, static_overhead: Resources) -> Resources {
        let regions: Resources =
            (0..self.regions.len()).map(|r| self.region_tiles(r).capacity()).sum();
        regions + self.static_resources() + static_overhead
    }

    /// The active partition (pool index) of region `r` in each
    /// configuration; `None` where the region is don't-care.
    pub fn region_states(&self, r: usize) -> Vec<Option<usize>> {
        let mut states = vec![None; self.num_configurations];
        for &p in &self.regions[r].partitions {
            for c in self.partitions[p].presence.iter() {
                debug_assert!(states[c].is_none(), "incompatible partitions share a region");
                states[c] = Some(p);
            }
        }
        states
    }

    /// Regions (by index) that reconfigure when switching configuration
    /// `i` → `j` under `semantics`. Symmetric in `i` and `j`; this is the
    /// single region-selection path behind [`Scheme::transition_frames`]
    /// and the runtime's frame prediction.
    pub fn transition_regions(
        &self,
        i: usize,
        j: usize,
        semantics: TransitionSemantics,
    ) -> Vec<usize> {
        (0..self.regions.len())
            .filter(|&r| {
                let states = self.region_states(r);
                region_reconfigures(states[i], states[j], semantics)
            })
            .collect()
    }

    /// Frames written when switching configuration `i` → `j` (Eq. 8 with
    /// `tcon_r` in frames). Symmetric in `i` and `j`.
    pub fn transition_frames(&self, i: usize, j: usize, semantics: TransitionSemantics) -> u64 {
        self.transition_regions(i, j, semantics).into_iter().map(|r| self.region_frames(r)).sum()
    }

    /// The runtime's frame prediction for an actual `from` → `to` switch:
    /// optimistic semantics (Eq. 8), because at run time a don't-care
    /// region keeps whatever it holds. `ConfigurationManager` and the
    /// transition certifier both call this one path.
    pub fn predicted_frames(&self, from: usize, to: usize) -> u64 {
        self.transition_frames(from, to, TransitionSemantics::Optimistic)
    }

    /// Total reconfiguration time over all unordered configuration pairs,
    /// in frames (Eq. 10).
    pub fn total_reconfig_frames(&self, semantics: TransitionSemantics) -> u64 {
        let c = self.num_configurations;
        let mut total = 0u64;
        for r in 0..self.regions.len() {
            let states = self.region_states(r);
            let pairs = differing_pairs(&states, c, semantics);
            total += pairs * self.region_frames(r);
        }
        total
    }

    /// Worst-case single transition, in frames (Eq. 11). Zero when fewer
    /// than two configurations exist.
    pub fn worst_reconfig_frames(&self, semantics: TransitionSemantics) -> u64 {
        let c = self.num_configurations;
        if c < 2 {
            return 0;
        }
        let npairs = c * (c - 1) / 2;
        let mut per_pair = vec![0u64; npairs];
        for r in 0..self.regions.len() {
            let states = self.region_states(r);
            let frames = self.region_frames(r);
            if frames == 0 {
                continue;
            }
            let mut k = 0;
            for i in 0..c {
                for j in i + 1..c {
                    if region_reconfigures(states[i], states[j], semantics) {
                        per_pair[k] += frames;
                    }
                    k += 1;
                }
            }
        }
        per_pair.into_iter().max().unwrap_or(0)
    }

    /// Probability-weighted total reconfiguration time (the paper's
    /// future-work extension: "If some statistical information about the
    /// probabilities of different configurations occurring is known, this
    /// could be factored into the measure"). `pair_weight(i, j)` supplies
    /// the relative likelihood of the unordered transition `{i, j}`.
    pub fn weighted_reconfig_frames(
        &self,
        semantics: TransitionSemantics,
        mut pair_weight: impl FnMut(usize, usize) -> f64,
    ) -> f64 {
        let c = self.num_configurations;
        let mut total = 0.0;
        for i in 0..c {
            for j in i + 1..c {
                total += pair_weight(i, j) * self.transition_frames(i, j, semantics) as f64;
            }
        }
        total
    }

    /// Weighted total reconfiguration cost under explicit transition
    /// weights (see [`crate::weights::TransitionWeights`]); with uniform
    /// weights this equals [`Scheme::total_reconfig_frames`] as `f64`.
    pub fn weighted_total(
        &self,
        weights: &crate::weights::TransitionWeights,
        semantics: TransitionSemantics,
    ) -> f64 {
        self.weighted_reconfig_frames(semantics, |i, j| weights.get(i, j))
    }

    /// Evaluates the scheme against a budget.
    pub fn metrics(
        &self,
        static_overhead: Resources,
        budget: &Resources,
        semantics: TransitionSemantics,
    ) -> SchemeMetrics {
        let resources = self.total_resources(static_overhead);
        SchemeMetrics {
            resources,
            total_frames: self.total_reconfig_frames(semantics),
            worst_frames: self.worst_reconfig_frames(semantics),
            num_regions: self.regions.len(),
            num_static: self.static_partitions.len(),
            fits: resources.fits_in(budget),
        }
    }

    /// Checks the structural invariants: no partition placed twice, no
    /// empty region, pairwise-compatible regions, every used mode covered.
    pub fn validate(&self, design: &Design) -> Result<(), SchemeInvariantError> {
        let mut placed = vec![false; self.partitions.len()];
        let mut place = |p: usize| -> Result<(), SchemeInvariantError> {
            if placed[p] {
                return Err(SchemeInvariantError::DuplicatePlacement(p));
            }
            placed[p] = true;
            Ok(())
        };
        for (ri, region) in self.regions.iter().enumerate() {
            if region.partitions.is_empty() {
                return Err(SchemeInvariantError::EmptyRegion(ri));
            }
            for &p in &region.partitions {
                place(p)?;
            }
            for (k, &a) in region.partitions.iter().enumerate() {
                for &b in &region.partitions[k + 1..] {
                    if !self.partitions[a].compatible_with(&self.partitions[b]) {
                        return Err(SchemeInvariantError::IncompatibleRegion { region: ri, a, b });
                    }
                }
            }
        }
        for &p in &self.static_partitions {
            place(p)?;
        }
        // Coverage: every mode of every configuration is in some placed
        // partition (covering a mode anywhere covers it everywhere; see
        // `crate::covering`).
        let mut covered = vec![false; design.num_modes()];
        for (p, part) in self.partitions.iter().enumerate() {
            if placed[p] {
                for m in &part.modes {
                    covered[m.idx()] = true;
                }
            }
        }
        for c in 0..design.num_configurations() {
            for m in design.config_modes(c) {
                if !covered[m.idx()] {
                    return Err(SchemeInvariantError::UncoveredMode(m.0));
                }
            }
        }
        Ok(())
    }

    /// Renders the scheme in the style of the paper's Tables III/V:
    /// one line per region listing its base partitions, plus a line for
    /// the static promotions.
    pub fn describe(&self, design: &Design) -> String {
        let mut out = String::new();
        if !self.static_partitions.is_empty() {
            let labels: Vec<String> =
                self.static_partitions.iter().map(|&p| self.partitions[p].label(design)).collect();
            out.push_str(&format!("static: {}\n", labels.join(", ")));
        }
        for (ri, region) in self.regions.iter().enumerate() {
            let labels: Vec<String> =
                region.partitions.iter().map(|&p| self.partitions[p].label(design)).collect();
            out.push_str(&format!("PRR{}: {}\n", ri + 1, labels.join(", ")));
        }
        out
    }
}

/// Does a region with endpoint states `a` (in configuration i) and `b`
/// (in j) reconfigure under the given semantics?
fn region_reconfigures(a: Option<usize>, b: Option<usize>, semantics: TransitionSemantics) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x != y,
        (None, None) => false,
        (None, Some(_)) | (Some(_), None) => {
            matches!(semantics, TransitionSemantics::Pessimistic)
        }
    }
}

/// Number of unordered configuration pairs in which the region
/// reconfigures, computed from its state vector by counting.
fn differing_pairs(states: &[Option<usize>], c: usize, semantics: TransitionSemantics) -> u64 {
    // Group sizes per state.
    let mut counts: std::collections::HashMap<usize, u64> = Default::default();
    let mut none = 0u64;
    for s in states {
        match s {
            Some(p) => *counts.entry(*p).or_default() += 1,
            None => none += 1,
        }
    }
    let choose2 = |n: u64| n * n.saturating_sub(1) / 2;
    let total_pairs = choose2(c as u64);
    let same_state: u64 = counts.values().map(|&n| choose2(n)).sum();
    match semantics {
        TransitionSemantics::Optimistic => {
            // Pairs with both defined and different.
            let active = c as u64 - none;
            choose2(active) - same_state
        }
        TransitionSemantics::Pessimistic => {
            // Everything except same-state and both-none pairs.
            total_pairs - same_state - choose2(none)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{generate_base_partitions, DEFAULT_CLIQUE_LIMIT};
    use prpart_design::{corpus, ConnectivityMatrix, Design};

    /// Builds a scheme over the abc example from singleton partitions of
    /// the given mode groups, grouping them into the given regions. All
    /// names are known-good, so resolution cannot fail.
    fn build_scheme(d: &Design, groups: &[&[(&str, &str)]], statics: &[(&str, &str)]) -> Scheme {
        Scheme::from_named_groups(d, groups, statics).expect("test names resolve")
    }

    /// One region per module over the abc example.
    fn abc_per_module() -> (Design, Scheme) {
        let d = corpus::abc_example();
        let s = build_scheme(
            &d,
            &[
                &[("A", "A1"), ("A", "A2"), ("A", "A3")],
                &[("B", "B1"), ("B", "B2")],
                &[("C", "C1"), ("C", "C2"), ("C", "C3")],
            ],
            &[],
        );
        (d, s)
    }

    #[test]
    fn renamed_mode_yields_typed_error_not_panic() {
        // A scheme written against an older design revision references
        // "A4", since removed/renamed: the constructor must report the
        // exact offending name as a PartitionError, not unwrap-panic.
        let d = corpus::abc_example();
        let err = Scheme::from_named_groups(&d, &[&[("A", "A1"), ("A", "A4")]], &[]).unwrap_err();
        assert_eq!(
            err,
            crate::error::PartitionError::UnknownMode {
                module: "A".to_string(),
                mode: "A4".to_string()
            }
        );
        // Statics resolve through the same path.
        let err = Scheme::from_named_groups(&d, &[], &[("Z", "A1")]).unwrap_err();
        assert!(matches!(err, crate::error::PartitionError::UnknownMode { .. }));
    }

    #[test]
    fn region_area_is_elementwise_max_quantised() {
        let (d, s) = abc_per_module();
        // Region A: max(100/0/0, 300/2/0, 150/0/4) = 300/2/4
        assert_eq!(s.region_resources(0), Resources::new(300, 2, 4));
        let t = s.region_tiles(0);
        assert_eq!((t.clb_tiles, t.bram_tiles, t.dsp_tiles), (15, 1, 1));
        assert_eq!(s.region_frames(0), 15 * 36 + 30 + 28);
        let _ = d;
    }

    #[test]
    fn region_states_follow_configurations() {
        let (d, s) = abc_per_module();
        // Region B (index 1) hosts B1 and B2: states per config are
        // B1 for conf2, B2 elsewhere.
        let states = s.region_states(1);
        let b1_pool = 3; // insertion order: A1 A2 A3 B1 B2 ...
        let b2_pool = 4;
        assert_eq!(
            states,
            vec![Some(b2_pool), Some(b1_pool), Some(b2_pool), Some(b2_pool), Some(b2_pool)]
        );
        let _ = d;
    }

    #[test]
    fn initial_assignment_has_zero_reconfig_time() {
        // One region per partition never changes state: the paper's
        // static-equivalent starting point.
        let d = corpus::abc_example();
        let m = ConnectivityMatrix::from_design(&d);
        let parts = generate_base_partitions(&d, &m, DEFAULT_CLIQUE_LIMIT).unwrap();
        let singles: Vec<_> = parts.iter().filter(|p| p.num_modes() == 1).cloned().collect();
        let s = Scheme::one_region_per_partition(singles, d.num_configurations());
        assert_eq!(s.total_reconfig_frames(TransitionSemantics::Optimistic), 0);
        assert_eq!(s.worst_reconfig_frames(TransitionSemantics::Optimistic), 0);
        s.validate(&d).unwrap();
    }

    #[test]
    fn transition_frames_symmetric_and_consistent_with_total() {
        let (d, s) = abc_per_module();
        let c = d.num_configurations();
        let mut sum = 0;
        let mut worst = 0;
        for i in 0..c {
            for j in i + 1..c {
                let f = s.transition_frames(i, j, TransitionSemantics::Optimistic);
                assert_eq!(f, s.transition_frames(j, i, TransitionSemantics::Optimistic));
                sum += f;
                worst = worst.max(f);
            }
        }
        assert_eq!(sum, s.total_reconfig_frames(TransitionSemantics::Optimistic));
        assert_eq!(worst, s.worst_reconfig_frames(TransitionSemantics::Optimistic));
        assert!(sum > 0);
    }

    #[test]
    fn pessimistic_charges_dont_care_endpoints() {
        // Special case design: modules C,F active only in config 1; E,P,R
        // only in config 2. Optimistically the single transition is free
        // (each region keeps its old contents... it is not! switching from
        // {C,F} to {E,P,R} must load E,P,R). Optimistic counts only
        // defined-to-defined changes, so per-module regions cost zero;
        // pessimistic charges all five regions.
        let d = corpus::special_case_single_mode();
        let s = build_scheme(
            &d,
            &[
                &[("CAN", "C1")],
                &[("FIR", "F1")],
                &[("Ethernet", "E1")],
                &[("FPU", "P1")],
                &[("CRC", "R1")],
            ],
            &[],
        );
        assert_eq!(s.total_reconfig_frames(TransitionSemantics::Optimistic), 0);
        let pess = s.total_reconfig_frames(TransitionSemantics::Pessimistic);
        let expect: u64 = (0..5).map(|r| s.region_frames(r)).sum();
        assert_eq!(pess, expect);
    }

    #[test]
    fn static_partitions_add_area_but_no_time() {
        let d = corpus::abc_example();
        let with_static = build_scheme(
            &d,
            &[&[("A", "A1"), ("A", "A2"), ("A", "A3")], &[("C", "C1"), ("C", "C2"), ("C", "C3")]],
            &[("B", "B1"), ("B", "B2")],
        );
        let (_, no_static) = abc_per_module();
        let sem = TransitionSemantics::Optimistic;
        // Region B's transitions disappear.
        assert!(with_static.total_reconfig_frames(sem) < no_static.total_reconfig_frames(sem));
        // Static area is the *sum* of B1 and B2.
        assert_eq!(with_static.static_resources(), Resources::new(520, 4, 8));
        with_static.validate(&d).unwrap();
    }

    #[test]
    fn total_resources_adds_overhead() {
        let (d, s) = abc_per_module();
        let total = s.total_resources(d.static_overhead());
        let no_overhead = s.total_resources(Resources::ZERO);
        assert_eq!(total, no_overhead + d.static_overhead());
    }

    #[test]
    fn metrics_reports_fit() {
        let (d, s) = abc_per_module();
        let sem = TransitionSemantics::Optimistic;
        let need = s.total_resources(d.static_overhead());
        let m = s.metrics(d.static_overhead(), &need, sem);
        assert!(m.fits);
        assert_eq!(m.num_regions, 3);
        assert_eq!(m.num_static, 0);
        let tight = Resources::new(need.clb - 1, need.bram, need.dsp);
        let m = s.metrics(d.static_overhead(), &tight, sem);
        assert!(!m.fits);
    }

    #[test]
    fn validate_catches_violations() {
        let d = corpus::abc_example();
        // Incompatible: A1 and B1 co-occur in conf2.
        let bad = build_scheme(&d, &[&[("A", "A1"), ("B", "B1")]], &[]);
        assert!(matches!(bad.validate(&d), Err(SchemeInvariantError::IncompatibleRegion { .. })));
        // Uncovered modes: only module A placed.
        let partial = build_scheme(&d, &[&[("A", "A1"), ("A", "A2"), ("A", "A3")]], &[]);
        assert!(matches!(partial.validate(&d), Err(SchemeInvariantError::UncoveredMode(_))));
        // Empty region.
        let mut s = partial.clone();
        s.regions.push(Region { partitions: vec![] });
        assert!(matches!(s.validate(&d), Err(SchemeInvariantError::EmptyRegion(_))));
        // Duplicate placement.
        let mut s = partial.clone();
        s.regions.push(Region { partitions: vec![0] });
        assert!(matches!(s.validate(&d), Err(SchemeInvariantError::DuplicatePlacement(0))));
    }

    #[test]
    fn describe_lists_regions_and_statics() {
        let d = corpus::abc_example();
        let s = build_scheme(
            &d,
            &[&[("A", "A1"), ("A", "A2"), ("A", "A3")], &[("C", "C1"), ("C", "C2"), ("C", "C3")]],
            &[("B", "B2")],
        );
        let text = s.describe(&d);
        assert!(text.contains("static: B2"), "{text}");
        assert!(text.contains("PRR1: A1, A2, A3"), "{text}");
        assert!(text.contains("PRR2: C1, C2, C3"), "{text}");
    }

    #[test]
    fn weighted_total_with_uniform_weights_matches_plain() {
        let (_, s) = abc_per_module();
        let sem = TransitionSemantics::Optimistic;
        let w = s.weighted_reconfig_frames(sem, |_, _| 1.0);
        assert_eq!(w, s.total_reconfig_frames(sem) as f64);
        // Zero weights kill the total.
        assert_eq!(s.weighted_reconfig_frames(sem, |_, _| 0.0), 0.0);
    }
}
