//! The traditional partitioning schemes the paper compares against (§IV-A,
//! Tables IV and Figs. 7–9):
//!
//! * **Single region** — all reconfigurable modules share one region sized
//!   for the largest configuration; *every* transition reconfigures the
//!   whole region. Minimum area, maximum total reconfiguration time.
//! * **One module per region** — each module gets a region sized for its
//!   largest mode; a transition reconfigures the regions of the modules
//!   whose mode changed.
//! * **Fully static** — every mode implemented concurrently, selected by
//!   multiplexers: zero reconfiguration time, maximum area (usually
//!   infeasible; the paper's Table IV lists it for reference).

use crate::partition::BasePartition;
use crate::scheme::{EvaluatedScheme, Region, Scheme, TransitionSemantics};
use prpart_arch::Resources;
use prpart_design::{ConnectivityMatrix, Design, GlobalModeId};
use prpart_graph::BitSet;

/// Builds the single-region baseline. The region hosts one
/// configuration-shaped partition per configuration; presence masks are
/// pinned to exactly that configuration so the region switches wholesale
/// on every transition, as the paper prescribes ("any system
/// reconfiguration requires reconfiguring the entire region").
pub fn single_region(design: &Design, matrix: &ConnectivityMatrix) -> Scheme {
    let c = design.num_configurations();
    let mut partitions = Vec::with_capacity(c);
    for ci in 0..c {
        let modes: Vec<GlobalModeId> = design.config_modes(ci).collect();
        let mut p = BasePartition::from_modes(design, matrix, modes);
        // Pin the presence to this configuration alone: the region is
        // loaded with the full configuration image, and switching to any
        // other configuration replaces it entirely.
        let mut mask = BitSet::new(c);
        mask.insert(ci);
        p.presence = mask;
        partitions.push(p);
    }
    let all: Vec<usize> = (0..partitions.len()).collect();
    Scheme {
        partitions,
        regions: vec![Region { partitions: all }],
        static_partitions: Vec::new(),
        num_configurations: c,
    }
}

/// Builds the one-module-per-region baseline: a region per module hosting
/// one singleton partition per *used* mode. Modules absent from every
/// configuration get no region.
pub fn per_module(design: &Design, matrix: &ConnectivityMatrix) -> Scheme {
    let mut partitions = Vec::new();
    let mut regions = Vec::new();
    for (mi, _m) in design.modules().iter().enumerate() {
        let mut members = Vec::new();
        for g in design.modes_of(prpart_design::ModuleId(mi as u32)) {
            if matrix.node_weight(g) == 0 {
                continue; // unused mode: no column in the matrix (§IV-D)
            }
            members.push(partitions.len());
            partitions.push(BasePartition::from_modes(design, matrix, vec![g]));
        }
        if !members.is_empty() {
            regions.push(Region { partitions: members });
        }
    }
    Scheme {
        partitions,
        regions,
        static_partitions: Vec::new(),
        num_configurations: design.num_configurations(),
    }
}

/// Builds the fully static implementation: every used mode in the static
/// region, no reconfigurable regions at all.
pub fn full_static(design: &Design, matrix: &ConnectivityMatrix) -> Scheme {
    let mut partitions = Vec::new();
    for m in 0..design.num_modes() {
        let g = GlobalModeId(m as u32);
        if matrix.node_weight(g) > 0 {
            partitions.push(BasePartition::from_modes(design, matrix, vec![g]));
        }
    }
    let statics: Vec<usize> = (0..partitions.len()).collect();
    Scheme {
        partitions,
        regions: Vec::new(),
        static_partitions: statics,
        num_configurations: design.num_configurations(),
    }
}

/// All three baselines, evaluated against a budget.
#[derive(Debug, Clone)]
pub struct Baselines {
    /// Single-region scheme.
    pub single_region: EvaluatedScheme,
    /// One-module-per-region scheme.
    pub per_module: EvaluatedScheme,
    /// Fully static scheme.
    pub full_static: EvaluatedScheme,
}

/// Evaluates all three baselines.
pub fn evaluate_baselines(
    design: &Design,
    matrix: &ConnectivityMatrix,
    budget: &Resources,
    semantics: TransitionSemantics,
) -> Baselines {
    let eval = |scheme: Scheme| {
        let metrics = scheme.metrics(design.static_overhead(), budget, semantics);
        EvaluatedScheme { scheme, metrics }
    };
    Baselines {
        single_region: eval(single_region(design, matrix)),
        per_module: eval(per_module(design, matrix)),
        full_static: eval(full_static(design, matrix)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_arch::TileCounts;
    use prpart_design::corpus;

    fn setup(set: corpus::VideoConfigSet) -> (Design, ConnectivityMatrix) {
        let d = corpus::video_receiver(set);
        let m = ConnectivityMatrix::from_design(&d);
        (d, m)
    }

    #[test]
    fn single_region_every_transition_reconfigures_everything() {
        let (d, m) = setup(corpus::VideoConfigSet::Original);
        let s = single_region(&d, &m);
        s.validate(&d).unwrap();
        let sem = TransitionSemantics::Optimistic;
        let frames = s.region_frames(0);
        let c = d.num_configurations() as u64;
        assert_eq!(s.total_reconfig_frames(sem), frames * c * (c - 1) / 2);
        assert_eq!(s.worst_reconfig_frames(sem), frames);
        // Region is sized for the largest configuration.
        assert_eq!(s.region_resources(0), d.single_region_min_resources());
    }

    #[test]
    fn per_module_matches_module_structure() {
        let (d, m) = setup(corpus::VideoConfigSet::Original);
        let s = per_module(&d, &m);
        s.validate(&d).unwrap();
        assert_eq!(s.regions.len(), 5);
        // Region for the Video module is sized for MPEG4 (element-wise max).
        let video_region = s
            .regions
            .iter()
            .position(|r| {
                r.partitions
                    .iter()
                    .any(|&p| d.mode_label(s.partitions[p].modes[0]).starts_with("Video"))
            })
            .unwrap();
        assert_eq!(s.region_resources(video_region), Resources::new(4700, 40, 65));
        // Unused Recovery.None got no partition: 13 singleton partitions.
        assert_eq!(s.partitions.len(), 13);
    }

    #[test]
    fn per_module_total_resources_ballpark_paper() {
        // Paper Table IV: the modular scheme needs ≈6580 CLBs, 48 BRAMs,
        // 144 DSPs. Our tile-quantised accounting lands within a few
        // percent (see EXPERIMENTS.md).
        let (d, m) = setup(corpus::VideoConfigSet::Original);
        let s = per_module(&d, &m);
        let total = s.total_resources(d.static_overhead());
        assert!((6400..=7000).contains(&total.clb), "{total}");
        assert!((44..=64).contains(&total.bram), "{total}");
        assert!((140..=152).contains(&total.dsp), "{total}");
        assert!(total.fits_in(&corpus::VIDEO_RECEIVER_BUDGET), "{total}");
    }

    #[test]
    fn full_static_is_zero_time_max_area() {
        let (d, m) = setup(corpus::VideoConfigSet::Original);
        let s = full_static(&d, &m);
        s.validate(&d).unwrap();
        let sem = TransitionSemantics::Optimistic;
        assert_eq!(s.total_reconfig_frames(sem), 0);
        assert_eq!(s.worst_reconfig_frames(sem), 0);
        // Area: sum of used modes (Recovery.None is zero anyway).
        assert_eq!(s.total_resources(Resources::ZERO), d.all_modes_resources());
        // It exceeds the case-study budget, as the paper notes.
        assert!(!s.total_resources(d.static_overhead()).fits_in(&corpus::VIDEO_RECEIVER_BUDGET));
    }

    #[test]
    fn evaluate_baselines_consistency() {
        let (d, m) = setup(corpus::VideoConfigSet::Original);
        let b = evaluate_baselines(
            &d,
            &m,
            &corpus::VIDEO_RECEIVER_BUDGET,
            TransitionSemantics::Optimistic,
        );
        assert!(!b.full_static.metrics.fits);
        assert!(b.per_module.metrics.fits);
        assert!(b.single_region.metrics.fits);
        // Orderings the paper relies on: static ≤ any in time; single
        // region ≥ per-module in total time; single region ≤ per-module
        // in area.
        assert_eq!(b.full_static.metrics.total_frames, 0);
        assert!(b.single_region.metrics.total_frames > b.per_module.metrics.total_frames);
        assert!(b.single_region.metrics.resources.clb <= b.per_module.metrics.resources.clb);
    }

    #[test]
    fn single_region_area_is_quantised_largest_config() {
        let (d, m) = setup(corpus::VideoConfigSet::Modified);
        let s = single_region(&d, &m);
        let expect = TileCounts::for_resources(&d.single_region_min_resources()).capacity();
        assert_eq!(s.total_resources(Resources::ZERO), expect);
    }

    #[test]
    fn per_module_worst_case_is_all_modules_switching() {
        // abc example: there exist transitions where all three modules
        // change mode, so the worst case is the sum of all region frames.
        let d = corpus::abc_example();
        let m = ConnectivityMatrix::from_design(&d);
        let s = per_module(&d, &m);
        let sem = TransitionSemantics::Optimistic;
        let sum: u64 = (0..s.regions.len()).map(|r| s.region_frames(r)).sum();
        // conf2 (A1,B1,C1) → conf1 (A3,B2,C3) switches every module.
        assert_eq!(s.transition_frames(0, 1, sem), sum);
        assert_eq!(s.worst_reconfig_frames(sem), sum);
    }
}
