//! Base partitions: the unit of region allocation.
//!
//! A **base partition** (paper §IV-C) is a set of modes that are loaded
//! into a region *together*, as one wrapper netlist. The clustering step
//! produces them as complete sub-graphs of the co-occurrence graph with
//! configuration support (DESIGN.md §5): every pair of its modes — indeed
//! all of them at once — appear together in at least one configuration.
//! Singleton partitions exist for every used mode.
//!
//! Properties carried here:
//!
//! * `resources` — the **sum** of the mode requirements: the modes of a
//!   base partition are concurrent, so a region hosting it must hold them
//!   all at once.
//! * `frequency_weight` — how often the group occurs: the node weight for
//!   singletons, the minimum internal edge weight otherwise.
//! * `presence` — the set of configurations in which *any* of its modes
//!   appears. Two partitions are **compatible** (may share a region) iff
//!   their presence masks are disjoint: their modes never co-occur, so at
//!   any instant at most one of them is needed (paper §IV-C).

use prpart_arch::{frames_for, Resources};
use prpart_design::{ConnectivityMatrix, Design, GlobalModeId};
use prpart_graph::BitSet;
use std::cmp::Ordering;
use std::fmt;

/// A group of modes allocated and reconfigured as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasePartition {
    /// The member modes, sorted ascending. Never two modes of the same
    /// module (same-module modes cannot co-occur).
    pub modes: Vec<GlobalModeId>,
    /// Occurrence count: node weight for singletons, minimum internal
    /// edge weight for larger groups (paper §IV-C).
    pub frequency_weight: u32,
    /// Sum of member mode resources (concurrent requirement).
    pub resources: Resources,
    /// Configurations in which any member mode appears.
    pub presence: BitSet,
}

impl BasePartition {
    /// Builds a partition from its member modes, deriving weight,
    /// resources and presence from the design and matrix.
    ///
    /// `frequency_weight` follows the paper: node weight when one mode,
    /// otherwise the minimum pairwise co-occurrence count.
    pub fn from_modes(
        design: &Design,
        matrix: &ConnectivityMatrix,
        mut modes: Vec<GlobalModeId>,
    ) -> Self {
        modes.sort_unstable();
        modes.dedup();
        assert!(!modes.is_empty(), "a base partition needs at least one mode");
        let frequency_weight = if modes.len() == 1 {
            matrix.node_weight(modes[0])
        } else {
            let mut min = u32::MAX;
            for (i, &a) in modes.iter().enumerate() {
                for &b in &modes[i + 1..] {
                    min = min.min(matrix.edge_weight(a, b));
                }
            }
            min
        };
        let resources = modes.iter().map(|&m| design.mode(m).resources).sum();
        let presence = matrix.presence_mask(&modes);
        BasePartition { modes, frequency_weight, resources, presence }
    }

    /// Number of member modes.
    pub fn num_modes(&self) -> usize {
        self.modes.len()
    }

    /// Frames needed to reconfigure a region holding exactly this
    /// partition (tile-quantised).
    pub fn frames(&self) -> u64 {
        frames_for(&self.resources)
    }

    /// True if this partition may share a region with `other`: their modes
    /// never co-occur in any configuration.
    pub fn compatible_with(&self, other: &BasePartition) -> bool {
        self.presence.is_disjoint(&other.presence)
    }

    /// The paper's list ordering: ascending number of modes, then
    /// ascending frequency weight, then ascending area (frames); final
    /// tie-break on the mode ids for determinism.
    pub fn list_order(&self, other: &BasePartition) -> Ordering {
        self.num_modes()
            .cmp(&other.num_modes())
            .then(self.frequency_weight.cmp(&other.frequency_weight))
            .then(self.frames().cmp(&other.frames()))
            .then(self.modes.cmp(&other.modes))
    }

    /// Human-readable label using the design's mode names, e.g.
    /// `"{A3, B2}"`.
    pub fn label(&self, design: &Design) -> String {
        let mut names: Vec<String> =
            self.modes.iter().map(|&m| design.mode(m).name.clone()).collect();
        match names.as_mut_slice() {
            [single] => std::mem::take(single),
            _ => format!("{{{}}}", names.join(", ")),
        }
    }
}

impl fmt::Display for BasePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.modes.iter().map(|m| m.0.to_string()).collect();
        write!(f, "{{{}}} (w={})", ids.join(","), self.frequency_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_design::corpus;

    fn setup() -> (Design, ConnectivityMatrix) {
        let d = corpus::abc_example();
        let m = ConnectivityMatrix::from_design(&d);
        (d, m)
    }

    fn part(d: &Design, m: &ConnectivityMatrix, names: &[(&str, &str)]) -> BasePartition {
        let modes = names.iter().map(|(mo, k)| d.mode_id(mo, k).unwrap()).collect();
        BasePartition::from_modes(d, m, modes)
    }

    #[test]
    fn singleton_uses_node_weight() {
        let (d, m) = setup();
        let p = part(&d, &m, &[("B", "B2")]);
        assert_eq!(p.frequency_weight, 4);
        let p = part(&d, &m, &[("A", "A2")]);
        assert_eq!(p.frequency_weight, 1);
    }

    #[test]
    fn pair_uses_edge_weight_and_triple_uses_min() {
        let (d, m) = setup();
        // Table I: {A3, B2} has frequency weight 2; {A3, B2, C3} has 1.
        let p = part(&d, &m, &[("A", "A3"), ("B", "B2")]);
        assert_eq!(p.frequency_weight, 2);
        let p = part(&d, &m, &[("A", "A3"), ("B", "B2"), ("C", "C3")]);
        assert_eq!(p.frequency_weight, 1);
    }

    #[test]
    fn resources_are_summed() {
        let (d, m) = setup();
        let p = part(&d, &m, &[("A", "A3"), ("B", "B2")]);
        let expect = d.mode(d.mode_id("A", "A3").unwrap()).resources
            + d.mode(d.mode_id("B", "B2").unwrap()).resources;
        assert_eq!(p.resources, expect);
        assert!(p.frames() > 0);
    }

    #[test]
    fn compatibility_matches_paper_examples() {
        let (d, m) = setup();
        // "{A1} and {A2} are compatible partitions since they do not
        // co-exist in any of the possible configurations, while {A1} and
        // {B1} are not compatible."
        let a1 = part(&d, &m, &[("A", "A1")]);
        let a2 = part(&d, &m, &[("A", "A2")]);
        let b1 = part(&d, &m, &[("B", "B1")]);
        assert!(a1.compatible_with(&a2));
        assert!(a2.compatible_with(&a1));
        assert!(!a1.compatible_with(&b1));
    }

    #[test]
    fn presence_covers_partial_occurrences() {
        let (d, m) = setup();
        // {A3, B2}: A3 in configs 1,3; B2 in 1,3,4,5 → presence 1,3,4,5.
        let p = part(&d, &m, &[("A", "A3"), ("B", "B2")]);
        assert_eq!(p.presence.iter().collect::<Vec<_>>(), vec![0, 2, 3, 4]);
    }

    #[test]
    fn list_order_sorts_by_size_weight_area() {
        let (d, m) = setup();
        let a2 = part(&d, &m, &[("A", "A2")]); // 1 mode, w=1
        let b2 = part(&d, &m, &[("B", "B2")]); // 1 mode, w=4
        let pair = part(&d, &m, &[("A", "A3"), ("B", "B2")]); // 2 modes
        assert_eq!(a2.list_order(&b2), Ordering::Less);
        assert_eq!(b2.list_order(&pair), Ordering::Less);
        assert_eq!(pair.list_order(&a2), Ordering::Greater);
        assert_eq!(a2.list_order(&a2), Ordering::Equal);
    }

    #[test]
    fn labels_are_readable() {
        let (d, m) = setup();
        let p = part(&d, &m, &[("A", "A3"), ("B", "B2")]);
        assert_eq!(p.label(&d), "{A3, B2}");
        let s = part(&d, &m, &[("B", "B2")]);
        assert_eq!(s.label(&d), "B2");
    }

    #[test]
    fn modes_are_sorted_and_deduped() {
        let (d, m) = setup();
        let b2 = d.mode_id("B", "B2").unwrap();
        let a3 = d.mode_id("A", "A3").unwrap();
        let p = BasePartition::from_modes(&d, &m, vec![b2, a3, b2]);
        assert_eq!(p.modes, vec![a3, b2]);
    }
}
