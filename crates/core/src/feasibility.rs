//! Implementation feasibility check (paper Fig. 6, first decision).
//!
//! "The minimum possible area required for system implementation will be
//! the area of the largest configuration (when all the modes are
//! implemented in a single reconfigurable region). Hence, the algorithm
//! first checks implementation feasibility by comparing this area with the
//! resource availability of the given FPGA."

use crate::error::PartitionError;
use prpart_arch::{Resources, TileCounts};
use prpart_design::Design;

/// The minimum resource requirement of a design: the tile-quantised area
/// of its largest configuration hosted in a single region, plus the static
/// overhead.
pub fn minimum_requirement(design: &Design) -> Resources {
    let region = TileCounts::for_resources(&design.single_region_min_resources());
    region.capacity() + design.static_overhead()
}

/// Checks that `design` can be implemented at all within `budget`
/// (device capacity or explicit reconfigurable budget). On failure the
/// device must be rejected and a larger one chosen.
pub fn check_feasibility(design: &Design, budget: &Resources) -> Result<(), PartitionError> {
    let required = minimum_requirement(design);
    if required.fits_in(budget) {
        Ok(())
    } else {
        Err(PartitionError::Infeasible { required, available: *budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_design::corpus;

    #[test]
    fn video_receiver_fits_its_budget() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        check_feasibility(&d, &corpus::VIDEO_RECEIVER_BUDGET).unwrap();
    }

    #[test]
    fn tiny_budget_is_rejected_with_details() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let tiny = Resources::new(1000, 10, 10);
        let err = check_feasibility(&d, &tiny).unwrap_err();
        match err {
            PartitionError::Infeasible { required, available } => {
                assert_eq!(available, tiny);
                assert!(required.clb > 1000);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn minimum_includes_static_overhead() {
        let d = corpus::abc_example();
        let min = minimum_requirement(&d);
        // abc static overhead is 90 CLB / 8 BRAM.
        assert!(min.clb >= 90 && min.bram >= 8);
        // Quantisation: CLB component is a multiple of 20 plus the
        // overhead's 90.
        assert_eq!((min.clb - 90) % 20, 0);
    }

    #[test]
    fn requirement_is_largest_configuration() {
        let d = corpus::abc_example();
        let min = minimum_requirement(&d);
        for c in 0..d.num_configurations() {
            let conf =
                TileCounts::for_resources(&d.config_resources(c)).capacity() + d.static_overhead();
            assert!(conf.fits_in(&min), "configuration {c} exceeds the minimum");
        }
    }
}
