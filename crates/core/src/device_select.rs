//! Device selection (paper §V).
//!
//! "For each design, the minimum resources required for implementation are
//! determined by considering a design using a single PR region. This is
//! used to determine the smallest FPGA that can accommodate the design...
//! If at the end of an iteration of the algorithm, no partitioning scheme
//! other than a single region is feasible, we select the next largest FPGA
//! and the design is partitioned again."

use crate::error::PartitionError;
use crate::feasibility::minimum_requirement;
use crate::search::{PartitionOutcome, Partitioner};
use prpart_arch::{Device, DeviceLibrary, Resources, TileCounts};
use prpart_design::{ConnectivityMatrix, Design};

/// Result of the smallest-device search.
#[derive(Debug, Clone)]
pub struct DeviceChoice {
    /// The selected device.
    pub device: Device,
    /// The partitioning outcome on that device.
    pub outcome: PartitionOutcome,
    /// How many times the device had to be escalated beyond the
    /// single-region minimum (the paper re-iterated 201 of 1000 synthetic
    /// designs this way).
    pub escalations: usize,
}

impl DeviceChoice {
    /// True if the chosen partitioning is a genuine alternative to the
    /// single-region scheme: more than one region, or static promotion.
    pub fn has_alternative_arrangement(&self) -> bool {
        self.outcome
            .best
            .as_ref()
            .is_some_and(|b| b.metrics.num_regions >= 2 || b.metrics.num_static >= 1)
    }
}

/// Finds the smallest library device on which the partitioner produces a
/// scheme other than a single region, escalating through the library as
/// the paper describes. If even the largest device yields no alternative,
/// the largest feasible device's outcome is returned (the single-region
/// scheme remains available there by construction).
///
/// `make_partitioner` builds the engine for a given device capacity, so
/// callers control strategy/semantics; use
/// `|budget| Partitioner::new(budget)` for defaults.
pub fn select_device(
    design: &Design,
    library: &DeviceLibrary,
    mut make_partitioner: impl FnMut(Resources) -> Partitioner,
) -> Result<DeviceChoice, PartitionError> {
    let required = minimum_requirement(design);
    // `smallest_fitting` is first-fit over the size order, so finding the
    // position directly gives both the start device and its index.
    let start_idx = library
        .devices()
        .iter()
        .position(|d| d.fits(&required))
        .ok_or(PartitionError::NoFeasibleDevice { required })?;
    let mut last: Option<DeviceChoice> = None;
    for (escalations, device) in library.devices()[start_idx..].iter().enumerate() {
        // Libraries need not be monotone in every resource (a larger-by-
        // logic part can carry fewer BRAMs or DSPs), so a device further
        // up the size order may still be infeasible — skip it rather
        // than fail.
        if !device.fits(&required) {
            continue;
        }
        let outcome = make_partitioner(device.capacity).partition(design)?;
        let choice = DeviceChoice { device: device.clone(), outcome, escalations };
        if choice.has_alternative_arrangement() {
            return Ok(choice);
        }
        last = Some(choice);
    }
    // Library exhausted without an alternative arrangement: return the
    // last (largest) attempt. The start device fits by construction, so
    // at least one device was always tried; an empty `last` can only
    // mean the fit checks disagreed with each other.
    last.ok_or(PartitionError::NoFeasibleDevice { required })
}

/// The smallest device that can hold the one-module-per-region baseline —
/// used for the paper's "13 designs fit a smaller FPGA than the
/// one-module-per-region scheme" statistic.
pub fn smallest_device_for_per_module<'l>(
    design: &Design,
    library: &'l DeviceLibrary,
) -> Option<&'l Device> {
    let matrix = ConnectivityMatrix::from_design(design);
    let scheme = crate::baselines::per_module(design, &matrix);
    let required = scheme.total_resources(design.static_overhead());
    library.smallest_fitting(&required)
}

/// The smallest device that can hold the fully static implementation.
pub fn smallest_device_for_static<'l>(
    design: &Design,
    library: &'l DeviceLibrary,
) -> Option<&'l Device> {
    let required = TileCounts::for_resources(&design.all_modes_resources()).capacity()
        + design.static_overhead();
    library.smallest_fitting(&required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_design::corpus;

    #[test]
    fn abc_design_selects_the_smallest_part() {
        let d = corpus::abc_example();
        let lib = DeviceLibrary::virtex5();
        let choice = select_device(&d, &lib, Partitioner::new).unwrap();
        // The abc example is tiny; it should land on the smallest device
        // with an alternative arrangement immediately.
        assert_eq!(choice.device.name, "LX20T");
        assert_eq!(choice.escalations, 0);
        assert!(choice.has_alternative_arrangement());
    }

    #[test]
    fn video_receiver_selects_a_fitting_part() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let lib = DeviceLibrary::virtex5();
        let choice = select_device(&d, &lib, Partitioner::new).unwrap();
        let best = choice.outcome.best.as_ref().unwrap();
        assert!(best.metrics.resources.fits_in(&choice.device.capacity));
        // Largest configuration needs ≈5900 CLBs: nothing below FX50T fits.
        let idx = lib.index_of(&choice.device).unwrap();
        assert!(idx >= lib.index_of(lib.by_name("FX50T").unwrap()).unwrap());
    }

    #[test]
    fn impossible_design_reports_no_device() {
        use prpart_design::DesignBuilder;
        let d = DesignBuilder::new("huge")
            .module("X", [("big", Resources::new(1_000_000, 0, 0)), ("small", Resources::clbs(10))])
            .module("Y", [("y", Resources::clbs(10))])
            .configuration("c1", [("X", "big"), ("Y", "y")])
            .configuration("c2", [("X", "small")])
            .build()
            .unwrap();
        let lib = DeviceLibrary::virtex5();
        let err = select_device(&d, &lib, Partitioner::new).unwrap_err();
        assert!(matches!(err, PartitionError::NoFeasibleDevice { .. }));
    }

    #[test]
    fn escalation_skips_non_monotone_devices() {
        // A library where the larger-by-logic device lacks the DSPs the
        // design needs: escalation must skip it, not error out.
        use prpart_arch::{Device, DeviceFamily};
        use prpart_design::DesignBuilder;
        let lib = DeviceLibrary::new(vec![
            Device::new("SMALL", DeviceFamily::Sx, Resources::new(2000, 20, 200), 3),
            Device::new("LOGIC", DeviceFamily::Lx, Resources::new(8000, 20, 8), 6),
            Device::new("BIG", DeviceFamily::Sx, Resources::new(12000, 60, 400), 8),
        ]);
        let d = DesignBuilder::new("dsp-hungry")
            .module(
                "X",
                [("x1", Resources::new(1500, 4, 150)), ("x2", Resources::new(1400, 4, 140))],
            )
            .module("Y", [("y1", Resources::new(300, 2, 20)), ("y2", Resources::new(200, 1, 10))])
            .configuration("c1", [("X", "x1"), ("Y", "y1")])
            .configuration("c2", [("X", "x2"), ("Y", "y2")])
            .configuration("c3", [("X", "x1"), ("Y", "y2")])
            .build()
            .unwrap();
        // The minimum fits SMALL; if no alternative arrangement exists
        // there, escalation passes over LOGIC (8 DSPs) to BIG without
        // erroring.
        let choice = select_device(&d, &lib, Partitioner::new).unwrap();
        assert_ne!(choice.device.name, "LOGIC");
    }

    #[test]
    fn per_module_device_is_at_least_single_region_device() {
        // The per-module baseline needs at least as much area as the
        // single-region minimum, so its smallest device is never smaller.
        let lib = DeviceLibrary::virtex5();
        for set in [corpus::VideoConfigSet::Original, corpus::VideoConfigSet::Modified] {
            let d = corpus::video_receiver(set);
            let single = lib.smallest_fitting(&minimum_requirement(&d)).unwrap();
            let per_module = smallest_device_for_per_module(&d, &lib).unwrap();
            assert!(lib.index_of(per_module) >= lib.index_of(single));
        }
    }

    #[test]
    fn static_device_is_largest_requirement() {
        let lib = DeviceLibrary::virtex5();
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        // Fully static needs ~15.8k cells: too big for FX95T (14720),
        // first fits FX130T (20480).
        let dev = smallest_device_for_static(&d, &lib).unwrap();
        assert_eq!(dev.name, "FX130T");
    }
}
