//! Human-readable reports: scheme tables in the style of the paper's
//! Tables III–V.

use crate::scheme::{EvaluatedScheme, SchemeMetrics};
use prpart_design::Design;

/// A named row of the scheme-comparison table (paper Table IV).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Scheme name (e.g. "Static", "Modular", "Proposed").
    pub name: String,
    /// Its metrics.
    pub metrics: SchemeMetrics,
}

/// Renders a Table IV-style comparison: resources and total/worst
/// reconfiguration time per scheme.
pub fn comparison_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>7} {:>6} {:>14} {:>14} {:>5}\n",
        "Scheme", "CLBs", "BRAMs", "DSPs", "Total (frames)", "Worst (frames)", "Fits"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for row in rows {
        let m = &row.metrics;
        out.push_str(&format!(
            "{:<12} {:>8} {:>7} {:>6} {:>14} {:>14} {:>5}\n",
            row.name,
            m.resources.clb,
            m.resources.bram,
            m.resources.dsp,
            m.total_frames,
            m.worst_frames,
            if m.fits { "yes" } else { "no" }
        ));
    }
    out
}

/// Renders one scheme: region membership (Table III/V style) followed by
/// its metrics line.
pub fn scheme_report(design: &Design, evaluated: &EvaluatedScheme) -> String {
    let mut out = evaluated.scheme.describe(design);
    let m = &evaluated.metrics;
    out.push_str(&format!(
        "resources: {} | total: {} frames | worst: {} frames | regions: {} | static parts: {}\n",
        m.resources, m.total_frames, m.worst_frames, m.num_regions, m.num_static
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Partitioner;
    use prpart_design::corpus;

    #[test]
    fn comparison_table_renders_rows() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let m = prpart_design::ConnectivityMatrix::from_design(&d);
        let b = crate::baselines::evaluate_baselines(
            &d,
            &m,
            &corpus::VIDEO_RECEIVER_BUDGET,
            Default::default(),
        );
        let table = comparison_table(&[
            ComparisonRow { name: "Static".into(), metrics: b.full_static.metrics },
            ComparisonRow { name: "Modular".into(), metrics: b.per_module.metrics },
        ]);
        assert!(table.contains("Static"));
        assert!(table.contains("Modular"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn scheme_report_mentions_regions() {
        let d = corpus::abc_example();
        let out =
            Partitioner::new(prpart_arch::Resources::new(1100, 20, 24)).partition(&d).unwrap();
        let best = out.best.unwrap();
        let report = scheme_report(&d, &best);
        assert!(report.contains("PRR1"), "{report}");
        assert!(report.contains("frames"), "{report}");
    }
}
