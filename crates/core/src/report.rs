//! Human-readable reports: scheme tables in the style of the paper's
//! Tables III–V, plus the truncation summary for anytime results.

use crate::scheme::{EvaluatedScheme, SchemeMetrics};
use crate::search::PartitionOutcome;
use prpart_design::Design;

/// A named row of the scheme-comparison table (paper Table IV).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Scheme name (e.g. "Static", "Modular", "Proposed").
    pub name: String,
    /// Its metrics.
    pub metrics: SchemeMetrics,
}

/// Renders a Table IV-style comparison: resources and total/worst
/// reconfiguration time per scheme.
pub fn comparison_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>7} {:>6} {:>14} {:>14} {:>5}\n",
        "Scheme", "CLBs", "BRAMs", "DSPs", "Total (frames)", "Worst (frames)", "Fits"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for row in rows {
        let m = &row.metrics;
        out.push_str(&format!(
            "{:<12} {:>8} {:>7} {:>6} {:>14} {:>14} {:>5}\n",
            row.name,
            m.resources.clb,
            m.resources.bram,
            m.resources.dsp,
            m.total_frames,
            m.worst_frames,
            if m.fits { "yes" } else { "no" }
        ));
    }
    out
}

/// Renders one scheme: region membership (Table III/V style) followed by
/// its metrics line.
pub fn scheme_report(design: &Design, evaluated: &EvaluatedScheme) -> String {
    let mut out = evaluated.scheme.describe(design);
    let m = &evaluated.metrics;
    out.push_str(&format!(
        "resources: {} | total: {} frames | worst: {} frames | regions: {} | static parts: {}\n",
        m.resources, m.total_frames, m.worst_frames, m.num_regions, m.num_static
    ));
    out
}

/// One line summarising a truncated or degraded sweep, or `None` for a
/// clean complete run — so reports of complete runs stay byte-identical
/// to what they were before budgets existed.
pub fn outcome_summary(outcome: &PartitionOutcome) -> Option<String> {
    if outcome.search_outcome.is_complete() && outcome.poisoned_units.is_empty() {
        return None;
    }
    let mut line = format!(
        "search {}: {}/{} units completed",
        outcome.search_outcome, outcome.units_completed, outcome.units_total
    );
    if outcome.units_partial > 0 {
        line.push_str(&format!(", {} partial", outcome.units_partial));
    }
    if outcome.units_skipped > 0 {
        line.push_str(&format!(", {} skipped", outcome.units_skipped));
    }
    if outcome.units_resumed > 0 {
        line.push_str(&format!(", {} resumed", outcome.units_resumed));
    }
    if !outcome.poisoned_units.is_empty() {
        line.push_str(&format!(", {} poisoned", outcome.poisoned_units.len()));
    }
    line.push_str(" | best-so-far result");
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Partitioner;
    use prpart_design::corpus;

    #[test]
    fn comparison_table_renders_rows() {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let m = prpart_design::ConnectivityMatrix::from_design(&d);
        let b = crate::baselines::evaluate_baselines(
            &d,
            &m,
            &corpus::VIDEO_RECEIVER_BUDGET,
            Default::default(),
        );
        let table = comparison_table(&[
            ComparisonRow { name: "Static".into(), metrics: b.full_static.metrics },
            ComparisonRow { name: "Modular".into(), metrics: b.per_module.metrics },
        ]);
        assert!(table.contains("Static"));
        assert!(table.contains("Modular"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn scheme_report_mentions_regions() {
        let d = corpus::abc_example();
        let out =
            Partitioner::new(prpart_arch::Resources::new(1100, 20, 24)).partition(&d).unwrap();
        let best = out.best.unwrap();
        let report = scheme_report(&d, &best);
        assert!(report.contains("PRR1"), "{report}");
        assert!(report.contains("frames"), "{report}");
    }

    #[test]
    fn outcome_summary_is_silent_for_complete_runs_and_loud_for_truncated() {
        let d = corpus::abc_example();
        let budget = prpart_arch::Resources::new(1100, 20, 24);
        let complete = Partitioner::new(budget).partition(&d).unwrap();
        assert_eq!(outcome_summary(&complete), None);

        let truncated = Partitioner::new(budget)
            .with_threads(1)
            .with_search_budget(crate::budget::SearchBudget::new().with_max_units(1))
            .partition(&d)
            .unwrap();
        let line = outcome_summary(&truncated).expect("truncation must be reported");
        assert!(line.contains("budget-exhausted"), "{line}");
        assert!(line.contains("skipped"), "{line}");
    }
}
