//! # prpart-core — the automated PR partitioning algorithm
//!
//! Implements the contribution of Vipin & Fahmy, *"Automated Partitioning
//! for Partial Reconfiguration Design of Adaptive Systems"* (IPDPSW 2013):
//! given a PR design (modules × modes + valid configurations) and an FPGA
//! resource budget, find the grouping of modes into reconfigurable regions
//! — and, when profitable, into the static region — that minimises total
//! reconfiguration time while fitting the device.
//!
//! Pipeline (paper §IV-C, Fig. 6):
//!
//! 1. **Feasibility** — the largest configuration must fit the device
//!    ([`feasibility::check_feasibility`]).
//! 2. **Clustering** ([`cluster`]) — agglomerative edge insertion on the
//!    mode co-occurrence graph discovers every *base partition* (complete
//!    sub-graph with configuration support) and its *frequency weight*.
//! 3. **Covering** ([`covering`]) — base partitions, ordered by
//!    (#modes, frequency weight, area), greedily cover the connectivity
//!    matrix, yielding *candidate partition sets*; successive sets are
//!    produced by dropping the list head.
//! 4. **Region allocation** ([`search`]) — starting from
//!    one-region-per-partition (a static-equivalent, zero-reconfiguration
//!    assignment), compatible partitions are merged into shared regions
//!    (paper Eq. 2) and regions are promoted into static logic, tracking
//!    the best feasible scheme under the cost model of Eqs. 7–11
//!    ([`scheme`]).
//!
//! [`baselines`] implements the two traditional schemes the paper compares
//! against (single region, one module per region) plus the fully static
//! implementation; [`device_select`] reproduces the smallest-device search
//! of §V.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod baselines;
pub mod budget;
pub mod checkpoint;
pub mod cluster;
pub mod covering;
pub mod device_select;
pub mod error;
pub mod feasibility;
pub mod partition;
pub mod report;
pub mod scheme;
pub mod search;
pub mod weights;

pub use audit::{AuditorHandle, SchemeAuditor};
pub use budget::{CancelToken, SearchBudget, SearchOutcome};
pub use checkpoint::CheckpointConfig;
pub use cluster::generate_base_partitions;
pub use covering::{cover, CandidateSets};
pub use error::PartitionError;
pub use partition::BasePartition;
pub use scheme::{EvaluatedScheme, Region, Scheme, SchemeMetrics, TransitionSemantics};
pub use search::{Objective, PartitionOutcome, Partitioner, PoisonedUnit, SearchStrategy};
pub use weights::TransitionWeights;
