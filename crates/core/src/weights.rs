//! Transition-probability weighting — the paper's future-work extension.
//!
//! "Total reconfiguration time is measured as the sum of all possible
//! configuration transitions ... If some statistical information about
//! the probabilities of different configurations occurring is known, this
//! could be factored into the measure" (§IV-C), and the conclusion calls
//! for exploiting "knowledge of the specific transition probabilities".
//!
//! [`TransitionWeights`] is a symmetric non-negative weight over unordered
//! configuration pairs. With uniform weights the weighted objective equals
//! the paper's Eq. 10 total; with profiled weights (see
//! `prpart_runtime::profiling`) the search optimises expected
//! reconfiguration cost under the observed workload.

use std::fmt;

/// Symmetric non-negative weights over unordered configuration pairs.
///
/// ```
/// use prpart_core::{Partitioner, TransitionWeights};
/// use prpart_design::corpus;
///
/// let design = corpus::video_receiver(corpus::VideoConfigSet::Original);
/// let mut weights = TransitionWeights::uniform(design.num_configurations());
/// weights.set(0, 3, 30.0); // the system mostly hops c1 <-> c4
/// let best = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
///     .with_transition_weights(weights)
///     .partition(&design)
///     .unwrap()
///     .best
///     .unwrap();
/// assert!(best.metrics.fits);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionWeights {
    n: usize,
    /// Full n×n storage (symmetric, zero diagonal).
    w: Vec<f64>,
}

impl TransitionWeights {
    /// All-ones weights over `n` configurations: the paper's unweighted
    /// total.
    pub fn uniform(n: usize) -> Self {
        let mut t = TransitionWeights { n, w: vec![1.0; n * n] };
        for i in 0..n {
            t.w[i * n + i] = 0.0;
        }
        t
    }

    /// All-zero weights (build up with [`TransitionWeights::set`]).
    pub fn zero(n: usize) -> Self {
        TransitionWeights { n, w: vec![0.0; n * n] }
    }

    /// Number of configurations.
    pub fn num_configurations(&self) -> usize {
        self.n
    }

    /// Sets the weight of the unordered pair `{i, j}`.
    ///
    /// # Panics
    /// Panics on the diagonal, out-of-range indices, or negative /
    /// non-finite weights.
    pub fn set(&mut self, i: usize, j: usize, weight: f64) {
        assert_ne!(i, j, "diagonal weights are meaningless");
        assert!(i < self.n && j < self.n, "pair ({i},{j}) out of range");
        assert!(weight.is_finite() && weight >= 0.0, "weight must be finite and >= 0");
        self.w[i * self.n + j] = weight;
        self.w[j * self.n + i] = weight;
    }

    /// The weight of the unordered pair `{i, j}` (zero on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.w[i * self.n + j]
    }

    /// Builds weights from observed (possibly directed) transition counts:
    /// `counts[i][j]` transitions i → j are symmetrised by addition.
    pub fn from_observed_counts(counts: &[Vec<u64>]) -> Self {
        let n = counts.len();
        let mut t = TransitionWeights::zero(n);
        for (i, row) in counts.iter().enumerate() {
            assert_eq!(row.len(), n, "count matrix must be square");
            for (j, &c) in row.iter().enumerate() {
                if i != j && c > 0 {
                    let prev = t.get(i, j);
                    t.set(i, j, prev + c as f64);
                }
            }
        }
        t
    }

    /// Scales the weights so they sum to the number of unordered pairs —
    /// making weighted totals magnitude-comparable with the unweighted
    /// Eq. 10 total. No-op for all-zero weights.
    pub fn normalised(&self) -> Self {
        let total: f64 = (0..self.n)
            .flat_map(|i| (i + 1..self.n).map(move |j| (i, j)))
            .map(|(i, j)| self.get(i, j))
            .sum();
        if total <= 0.0 {
            return self.clone();
        }
        let pairs = (self.n * self.n.saturating_sub(1) / 2) as f64;
        let scale = pairs / total;
        let mut out = self.clone();
        for v in &mut out.w {
            *v *= scale;
        }
        out
    }

    /// Total weight over unordered pairs.
    pub fn total_mass(&self) -> f64 {
        (0..self.n)
            .flat_map(|i| (i + 1..self.n).map(move |j| (i, j)))
            .map(|(i, j)| self.get(i, j))
            .sum()
    }
}

impl fmt::Display for TransitionWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TransitionWeights({} configs, mass {:.2})", self.n, self.total_mass())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_unit_pairs_and_zero_diagonal() {
        let w = TransitionWeights::uniform(4);
        assert_eq!(w.get(0, 1), 1.0);
        assert_eq!(w.get(2, 2), 0.0);
        assert_eq!(w.total_mass(), 6.0);
    }

    #[test]
    fn set_is_symmetric() {
        let mut w = TransitionWeights::zero(3);
        w.set(0, 2, 5.0);
        assert_eq!(w.get(2, 0), 5.0);
        assert_eq!(w.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        TransitionWeights::zero(3).set(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        TransitionWeights::zero(3).set(0, 1, -1.0);
    }

    #[test]
    fn observed_counts_symmetrise() {
        // 0→1 seen 3 times, 1→0 once, 1→2 twice.
        let counts = vec![vec![0, 3, 0], vec![1, 0, 2], vec![0, 0, 0]];
        let w = TransitionWeights::from_observed_counts(&counts);
        assert_eq!(w.get(0, 1), 4.0);
        assert_eq!(w.get(1, 2), 2.0);
        assert_eq!(w.get(0, 2), 0.0);
    }

    #[test]
    fn normalisation_preserves_ratios_and_fixes_mass() {
        let mut w = TransitionWeights::zero(3);
        w.set(0, 1, 2.0);
        w.set(1, 2, 6.0);
        let n = w.normalised();
        assert!((n.total_mass() - 3.0).abs() < 1e-12, "3 unordered pairs");
        assert!((n.get(1, 2) / n.get(0, 1) - 3.0).abs() < 1e-12);
        // Zero weights: normalising is a no-op, not a NaN factory.
        let z = TransitionWeights::zero(3).normalised();
        assert_eq!(z.total_mass(), 0.0);
    }
}
