//! Errors surfaced by the partitioning pipeline.

use prpart_arch::Resources;
use std::fmt;

/// A failure of the partitioning pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The design cannot fit the device even as a single region: the
    /// largest configuration (plus static overhead) exceeds the budget.
    /// The paper's flow chart rejects the device at this point (Fig. 6,
    /// "select bigger FPGA").
    Infeasible {
        /// Tile-quantised requirement of the largest configuration plus
        /// static overhead.
        required: Resources,
        /// The offered budget.
        available: Resources,
    },
    /// Clique enumeration during clustering exceeded the configured
    /// budget; the design's configuration structure is pathologically
    /// dense.
    CliqueLimit(usize),
    /// The covering step could not cover every mode with the remaining
    /// base partitions (only possible after head-dropping; the initial
    /// all-singletons list always covers).
    CoverageFailed,
    /// The device library was exhausted during device selection without
    /// finding a feasible device.
    NoFeasibleDevice {
        /// Requirement that nothing satisfied.
        required: Resources,
    },
    /// Transition weights were supplied for the wrong number of
    /// configurations.
    WeightsDimension {
        /// Configurations in the design.
        expected: usize,
        /// Configurations the weight matrix covers.
        got: usize,
    },
    /// A scheme description referenced a module/mode pair the design does
    /// not define (e.g. a mode renamed or removed since the scheme was
    /// written).
    UnknownMode {
        /// Module name as referenced.
        module: String,
        /// Mode name as referenced.
        mode: String,
    },
    /// A checkpoint file could not be read, written, or validated (I/O
    /// failure, CRC mismatch, unsupported version, or a fingerprint that
    /// does not match the current design and settings).
    Checkpoint {
        /// The checkpoint file involved.
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// An internal engine invariant failed — e.g. a search worker
    /// thread panicked outside the per-unit panic isolation. Always an
    /// engine bug, never a bad input.
    Internal {
        /// Description of the violated invariant.
        detail: String,
    },
    /// An installed [`SchemeAuditor`](crate::audit::SchemeAuditor)
    /// rejected a result the search was about to return. This always
    /// indicates an engine bug (or a misbehaving auditor), never a bad
    /// input: infeasible inputs are rejected earlier with typed errors.
    AuditFailed {
        /// Name of the auditor that rejected the result.
        auditor: &'static str,
        /// The auditor's description of every violation found.
        details: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Infeasible { required, available } => write!(
                f,
                "design infeasible: largest configuration needs {required} but only {available} available"
            ),
            PartitionError::CliqueLimit(n) => {
                write!(f, "clustering exceeded the clique budget of {n}")
            }
            PartitionError::CoverageFailed => {
                write!(f, "covering failed: some mode is in no remaining base partition")
            }
            PartitionError::NoFeasibleDevice { required } => {
                write!(f, "no device in the library can hold {required}")
            }
            PartitionError::WeightsDimension { expected, got } => write!(
                f,
                "transition weights cover {got} configurations but the design has {expected}"
            ),
            PartitionError::UnknownMode { module, mode } => {
                write!(f, "design defines no mode '{mode}' in module '{module}'")
            }
            PartitionError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {path}: {detail}")
            }
            PartitionError::Internal { detail } => {
                write!(f, "internal engine invariant violated: {detail}")
            }
            PartitionError::AuditFailed { auditor, details } => {
                write!(f, "{auditor} rejected the search result: {details}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}
