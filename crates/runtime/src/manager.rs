//! The configuration manager: the software on the paper's embedded
//! processor that moves the system between configurations — now
//! fault-tolerant: every region load can fail (see [`crate::fault`]),
//! and a [`RecoveryPolicy`] decides how hard to fight back before
//! degrading service.

use crate::error::RuntimeError;
use crate::icap::IcapController;
use crate::telemetry::ReliabilityTelemetry;
use prpart_core::Scheme;
use std::time::Duration;

/// How the manager recovers from reconfiguration faults.
///
/// The policy is applied per region load: bounded retries with
/// exponential backoff, then (optionally) one configuration-memory
/// scrub followed by a final reload. When a region exhausts recovery
/// [`blacklist_threshold`] times in a row it is blacklisted and the
/// manager enters *degraded mode*: configurations that need the region
/// become unavailable, everything else keeps being served. A designated
/// [`safe_config`] catches failed transitions when one is set.
///
/// [`blacklist_threshold`]: RecoveryPolicy::blacklist_threshold
/// [`safe_config`]: RecoveryPolicy::safe_config
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum retries per region load (0 = fail on the first fault).
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^k`, capped below.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: Duration,
    /// After retries are exhausted, scrub the region once and reload.
    pub scrub: bool,
    /// Fall back to this configuration when a transition fails.
    pub safe_config: Option<usize>,
    /// Consecutive recovery exhaustions before a region is blacklisted.
    pub blacklist_threshold: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_micros(2),
            backoff_cap: Duration::from_millis(1),
            scrub: true,
            safe_config: None,
            blacklist_threshold: 2,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff delay before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// One executed transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Configuration before (None at power-up).
    pub from: Option<usize>,
    /// Configuration actually reached.
    pub to: usize,
    /// Configuration that was requested (differs from `to` only after a
    /// safe-configuration fallback).
    pub requested: usize,
    /// Regions actually reconfigured.
    pub regions_reconfigured: usize,
    /// Frames written.
    pub frames: u64,
    /// Wall-clock reconfiguration time under the ICAP model, including
    /// any recovery overhead.
    pub time: Duration,
    /// Retry attempts spent recovering during this transition.
    pub retries: u32,
    /// Faults injected during this transition.
    pub faults: u32,
    /// The portion of `time` spent on recovery (failed attempts,
    /// backoff, stalls, scrubs).
    pub recovery_time: Duration,
    /// True when the transition fell back to the safe configuration.
    pub fell_back: bool,
}

impl TransitionRecord {
    /// The fault-free portion of [`TransitionRecord::time`]: what the
    /// transition cost at the port with every recovery episode removed.
    /// This is the quantity the static certifier's per-transition bound
    /// dominates (recovery time is unbounded by design: it scales with
    /// the retry budget, not the scheme).
    pub fn clean_time(&self) -> Duration {
        self.time.saturating_sub(self.recovery_time)
    }
}

/// Outcome of loading one region, including recovery accounting.
struct RegionLoad {
    /// Total simulated time, recovery included.
    time: Duration,
    /// The recovery portion of `time`.
    recovery: Duration,
    /// Retries spent.
    retries: u32,
    /// Faults hit.
    faults: u32,
}

/// A failed region load after recovery was exhausted.
struct RegionLoadFailure {
    attempts: u32,
    elapsed: Duration,
    retries: u32,
    faults: u32,
}

/// Tracks per-region contents and reconfigures through an
/// [`IcapController`].
///
/// Unlike the design-time cost model — which charges each configuration
/// *pair* independently — the manager has real history: a region whose
/// required partition is already loaded (including via a don't-care hop)
/// costs nothing. Measured trajectory costs therefore bracket the model's
/// optimistic/pessimistic estimates (DESIGN.md §5, ablation A3).
///
/// Reconfiguration is fallible: [`transition`] returns a typed
/// [`RuntimeError`] instead of panicking, recovery follows the
/// manager's [`RecoveryPolicy`], and reliability counters accumulate in
/// a [`ReliabilityTelemetry`].
///
/// [`transition`]: ConfigurationManager::transition
#[derive(Debug, Clone)]
pub struct ConfigurationManager {
    scheme: Scheme,
    icap: IcapController,
    policy: RecoveryPolicy,
    /// Per-region, per-configuration required partition (pool index).
    states: Vec<Vec<Option<usize>>>,
    /// What each region currently holds (None = unloaded or scrambled
    /// by a failed load).
    contents: Vec<Option<usize>>,
    /// Regions blacklisted by degraded mode.
    blacklist: Vec<bool>,
    /// Per-configuration bitmask of the regions it needs (bit `r % 64`
    /// of word `r / 64`), cached at construction so availability checks
    /// are a few word ANDs instead of a region scan.
    needed_masks: Vec<Vec<u64>>,
    /// Bitmask mirror of `blacklist`, maintained at the single place a
    /// region is blacklisted.
    blacklist_mask: Vec<u64>,
    /// Consecutive recovery exhaustions per region (reset on success).
    consecutive_failures: Vec<u32>,
    current: Option<usize>,
    log: Vec<TransitionRecord>,
    telemetry: ReliabilityTelemetry,
}

impl ConfigurationManager {
    /// Creates a manager for a scheme with the default recovery policy;
    /// all regions start unloaded.
    pub fn new(scheme: Scheme, icap: IcapController) -> Self {
        ConfigurationManager::with_policy(scheme, icap, RecoveryPolicy::default())
    }

    /// Creates a manager with an explicit recovery policy.
    pub fn with_policy(scheme: Scheme, icap: IcapController, policy: RecoveryPolicy) -> Self {
        let states: Vec<Vec<Option<usize>>> =
            (0..scheme.regions.len()).map(|r| scheme.region_states(r)).collect();
        let nregions = scheme.regions.len();
        let words = nregions.div_ceil(64);
        let needed_masks: Vec<Vec<u64>> = (0..scheme.num_configurations)
            .map(|c| {
                let mut mask = vec![0u64; words];
                for (r, states_r) in states.iter().enumerate() {
                    if states_r[c].is_some() {
                        mask[r / 64] |= 1 << (r % 64);
                    }
                }
                mask
            })
            .collect();
        ConfigurationManager {
            scheme,
            icap,
            policy,
            states,
            contents: vec![None; nregions],
            blacklist: vec![false; nregions],
            needed_masks,
            blacklist_mask: vec![0u64; words],
            consecutive_failures: vec![0; nregions],
            current: None,
            log: Vec::new(),
            telemetry: ReliabilityTelemetry::new(nregions),
        }
    }

    /// The scheme being managed.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The current configuration, if any (None at power-up or after a
    /// failed transition left the fabric in an undefined state).
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The executed transition log.
    pub fn log(&self) -> &[TransitionRecord] {
        &self.log
    }

    /// The underlying ICAP controller (for statistics).
    pub fn icap(&self) -> &IcapController {
        &self.icap
    }

    /// Reliability counters accumulated so far.
    pub fn telemetry(&self) -> &ReliabilityTelemetry {
        &self.telemetry
    }

    /// Regions blacklisted by degraded mode, in index order.
    pub fn blacklisted_regions(&self) -> Vec<usize> {
        (0..self.blacklist.len()).filter(|&r| self.blacklist[r]).collect()
    }

    /// True once at least one region has been blacklisted.
    pub fn is_degraded(&self) -> bool {
        self.blacklist.iter().any(|&b| b)
    }

    /// True when `config` can be served: it needs no blacklisted
    /// region. Out-of-range configurations are unavailable.
    ///
    /// O(regions / 64): intersects the configuration's cached
    /// needed-region bitmask with the blacklist bitmask instead of
    /// re-scanning per-region state tables.
    pub fn config_available(&self, config: usize) -> bool {
        config < self.scheme.num_configurations
            && self.needed_masks[config].iter().zip(&self.blacklist_mask).all(|(n, b)| n & b == 0)
    }

    /// The configurations still servable in the current (possibly
    /// degraded) state.
    pub fn available_configurations(&self) -> Vec<usize> {
        (0..self.scheme.num_configurations).filter(|&c| self.config_available(c)).collect()
    }

    /// Switches the system to configuration `to`, reconfiguring exactly
    /// the regions whose required partition is not already loaded and
    /// recovering from injected faults per the [`RecoveryPolicy`].
    /// Returns the record of what happened, or a typed error when `to`
    /// is out of range or recovery was exhausted (after falling back to
    /// the safe configuration when one is set and still available).
    pub fn transition(&mut self, to: usize) -> Result<&TransitionRecord, RuntimeError> {
        if to >= self.scheme.num_configurations {
            return Err(RuntimeError::ConfigurationOutOfRange {
                requested: to,
                num_configurations: self.scheme.num_configurations,
            });
        }
        self.telemetry.transitions_attempted += 1;
        match self.execute(to) {
            Ok(record) => {
                self.telemetry.transitions_completed += 1;
                self.current = Some(to);
                Ok(self.push_record(record))
            }
            Err(err) => {
                // A failed switch leaves the fabric between
                // configurations.
                self.current = None;
                if let Some(safe) = self.policy.safe_config {
                    if safe != to && self.config_available(safe) {
                        if let Ok(mut record) = self.execute(safe) {
                            record.requested = to;
                            record.fell_back = true;
                            self.telemetry.fallbacks += 1;
                            self.current = Some(safe);
                            return Ok(self.push_record(record));
                        }
                    }
                }
                self.telemetry.transitions_failed += 1;
                Err(err)
            }
        }
    }

    /// Appends `record` to the log and hands back a borrow of the
    /// stored copy (the index is in range by construction).
    fn push_record(&mut self, record: TransitionRecord) -> &TransitionRecord {
        self.log.push(record);
        &self.log[self.log.len() - 1]
    }

    /// Performs the region loads for a switch to `to`. On failure the
    /// already-rewritten regions keep their new contents and the
    /// failing region is left scrambled (`contents = None`).
    fn execute(&mut self, to: usize) -> Result<TransitionRecord, RuntimeError> {
        for r in 0..self.blacklist.len() {
            if self.blacklist[r] && self.states[r][to].is_some() {
                return Err(RuntimeError::RegionBlacklisted { config: to, region: r });
            }
        }
        let mut frames = 0u64;
        let mut time = Duration::ZERO;
        let mut nregions = 0usize;
        let mut retries = 0u32;
        let mut faults = 0u32;
        let mut recovery = Duration::ZERO;
        for r in 0..self.scheme.regions.len() {
            if let Some(needed) = self.states[r][to] {
                if self.contents[r] != Some(needed) {
                    let f = self.scheme.region_frames(r);
                    match self.load_region(r, f) {
                        Ok(load) => {
                            frames += f;
                            time += load.time;
                            recovery += load.recovery;
                            retries += load.retries;
                            faults += load.faults;
                            nregions += 1;
                            self.contents[r] = Some(needed);
                        }
                        Err(failure) => {
                            self.contents[r] = None;
                            self.consecutive_failures[r] += 1;
                            if self.consecutive_failures[r] >= self.policy.blacklist_threshold
                                && !self.blacklist[r]
                            {
                                self.blacklist[r] = true;
                                self.blacklist_mask[r / 64] |= 1 << (r % 64);
                                self.telemetry.blacklisted.push(r);
                            }
                            let _ = (failure.retries, failure.faults);
                            return Err(RuntimeError::RegionFault {
                                config: to,
                                region: r,
                                attempts: failure.attempts,
                                elapsed: time + failure.elapsed,
                            });
                        }
                    }
                }
            }
            // Don't-care: the region keeps whatever it holds.
        }
        Ok(TransitionRecord {
            from: self.current,
            to,
            requested: to,
            regions_reconfigured: nregions,
            frames,
            time,
            retries,
            faults,
            recovery_time: recovery,
            fell_back: false,
        })
    }

    /// Loads one region of `frames` frames with retry/backoff/scrub
    /// recovery. Telemetry is updated as faults happen; the retry
    /// histogram and MTTR are fed on successful recovery.
    fn load_region(&mut self, region: usize, frames: u64) -> Result<RegionLoad, RegionLoadFailure> {
        let mut attempts = 0u32; // failed attempts so far
        let mut episode_faults = 0u32;
        let mut total = Duration::ZERO;
        let mut recovery = Duration::ZERO;
        let mut scrubbed = false;
        loop {
            match self.icap.try_load_frames(region, frames) {
                Ok(ok) => {
                    total += ok.time;
                    if ok.stall > Duration::ZERO {
                        episode_faults += 1;
                        self.telemetry.faults += 1;
                        self.telemetry.stalls += 1;
                        self.telemetry.region_faults[region] += 1;
                        recovery += ok.stall;
                    }
                    if attempts > 0 || episode_faults > 0 {
                        self.telemetry.record_episode(attempts, recovery);
                    }
                    self.consecutive_failures[region] = 0;
                    return Ok(RegionLoad {
                        time: total,
                        recovery,
                        retries: attempts,
                        faults: episode_faults,
                    });
                }
                Err(fault) => {
                    episode_faults += 1;
                    self.telemetry.faults += 1;
                    self.telemetry.crc_errors += 1;
                    self.telemetry.region_faults[region] += 1;
                    total += fault.wasted;
                    recovery += fault.wasted;
                    if attempts < self.policy.max_retries {
                        let backoff = self.policy.backoff(attempts);
                        total += backoff;
                        recovery += backoff;
                        attempts += 1;
                        self.telemetry.retries += 1;
                        continue;
                    }
                    if self.policy.scrub && !scrubbed {
                        let t = self.icap.scrub(region, frames);
                        self.telemetry.scrubs += 1;
                        total += t;
                        recovery += t;
                        scrubbed = true;
                        attempts += 1;
                        self.telemetry.retries += 1;
                        continue;
                    }
                    return Err(RegionLoadFailure {
                        attempts: attempts + 1, // count the initial try
                        elapsed: total,
                        retries: attempts,
                        faults: episode_faults,
                    });
                }
            }
        }
    }

    /// Runs a whole configuration walk; returns (total frames, total
    /// time) excluding the initial load if `skip_first_load` is set (the
    /// usual convention: power-up is a full-bitstream load, not a
    /// reconfiguration). Stops at the first failed transition.
    pub fn run_walk(
        &mut self,
        walk: &[usize],
        skip_first_load: bool,
    ) -> Result<(u64, Duration), RuntimeError> {
        let mut frames = 0u64;
        let mut time = Duration::ZERO;
        for (i, &c) in walk.iter().enumerate() {
            let rec = self.transition(c)?;
            if i == 0 && skip_first_load {
                continue;
            }
            frames += rec.frames;
            time += rec.time;
        }
        Ok((frames, time))
    }

    /// The model's pairwise prediction for comparison (Eq. 8 in frames,
    /// optimistic semantics) — delegates to the scheme's shared
    /// prediction path so the runtime and the static certifier can never
    /// disagree by construction.
    pub fn predicted_frames(&self, from: usize, to: usize) -> u64 {
        self.scheme.predicted_frames(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use prpart_arch::IcapModel;
    use prpart_core::Partitioner;
    use prpart_design::corpus;

    fn case_study_manager() -> ConfigurationManager {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
        ConfigurationManager::new(out.best.unwrap().scheme, IcapController::default())
    }

    fn disjoint_manager(policy: RecoveryPolicy, faults: FaultModel) -> ConfigurationManager {
        // Disjoint configurations: per-module regions are don't-care in
        // the *other* configuration, so blacklisting a region of one
        // configuration leaves the other fully servable.
        let d = corpus::special_case_single_mode();
        let matrix = prpart_design::ConnectivityMatrix::from_design(&d);
        let scheme = prpart_core::baselines::per_module(&d, &matrix);
        ConfigurationManager::with_policy(
            scheme,
            IcapController::with_faults(IcapModel::virtex5(), faults),
            policy,
        )
    }

    /// A region (with nonzero frames) that configuration `c` needs.
    fn region_needed_by(m: &ConfigurationManager, c: usize) -> usize {
        (0..m.scheme().regions.len())
            .find(|&r| m.scheme().region_states(r)[c].is_some() && m.scheme().region_frames(r) > 0)
            .expect("configuration needs at least one real region")
    }

    #[test]
    fn first_transition_loads_needed_regions() {
        let mut m = case_study_manager();
        let rec = m.transition(0).unwrap();
        assert_eq!(rec.from, None);
        assert!(rec.frames > 0, "initial load populates regions");
        assert_eq!(rec.requested, 0);
        assert_eq!(rec.retries, 0);
        assert!(!rec.fell_back);
        assert_eq!(m.current(), Some(0));
    }

    #[test]
    fn self_transition_is_free() {
        let mut m = case_study_manager();
        m.transition(0).unwrap();
        let rec = m.transition(0).unwrap();
        assert_eq!(rec.frames, 0);
        assert_eq!(rec.regions_reconfigured, 0);
        assert_eq!(rec.time, Duration::ZERO);
    }

    #[test]
    fn measured_hops_bracketed_by_model_semantics() {
        // A measured hop is bounded below by the optimistic pairwise cost
        // (regions whose defined state changes always reload) and above
        // by the pessimistic cost (a don't-care endpoint is charged at
        // most once). See DESIGN.md §5 / ablation A3.
        use prpart_core::TransitionSemantics::{Optimistic, Pessimistic};
        let mut m = case_study_manager();
        m.transition(0).unwrap();
        let c = m.scheme().num_configurations;
        for to in 1..c {
            let from = m.current().unwrap();
            let opt = m.scheme().transition_frames(from, to, Optimistic);
            let pess = m.scheme().transition_frames(from, to, Pessimistic);
            let rec = m.transition(to).unwrap();
            assert!(
                (opt..=pess).contains(&rec.frames),
                "hop {from}->{to}: measured {} outside [{opt}, {pess}]",
                rec.frames
            );
        }
    }

    #[test]
    fn dont_care_history_can_beat_pairwise_model() {
        // Special-case design (disjoint configurations): per-module
        // regions are don't-care in the *other* configuration, so a
        // c1 → c2 → c1 walk only loads each region once.
        let mut m = disjoint_manager(RecoveryPolicy::default(), FaultModel::none());
        m.transition(0).unwrap();
        let back_and_forth = m.run_walk(&[1, 0, 1, 0], false).unwrap();
        // After the first visit to each configuration, regions hold their
        // partitions forever: only the first two hops load anything.
        let loads: Vec<u64> = m.log().iter().map(|r| r.frames).collect();
        assert!(loads[1] > 0, "first visit to c2 loads its regions");
        assert_eq!(&loads[2..], &[0, 0, 0], "everything already resident: {loads:?}");
        assert_eq!(back_and_forth.0, loads[1]);
    }

    #[test]
    fn walk_accounting_sums_records() {
        let mut m = case_study_manager();
        let (frames, time) = m.run_walk(&[0, 1, 2, 3, 0], true).unwrap();
        let log_frames: u64 = m.log()[1..].iter().map(|r| r.frames).sum();
        assert_eq!(frames, log_frames);
        assert!(time > Duration::ZERO);
        assert_eq!(m.icap().stats().frames, frames + m.log()[0].frames);
    }

    #[test]
    fn out_of_range_transition_is_a_typed_error() {
        let err = case_study_manager().transition(99).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::ConfigurationOutOfRange { requested: 99, num_configurations: 8 }
        );
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn zero_fault_telemetry_stays_clean() {
        let mut m = case_study_manager();
        m.run_walk(&[0, 1, 2, 3, 4, 5, 6, 7, 0], false).unwrap();
        let t = m.telemetry();
        assert_eq!(t.transitions_attempted, 9);
        assert_eq!(t.transitions_completed, 9);
        assert_eq!(t.faults, 0);
        assert_eq!(t.retries, 0);
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.mean_time_to_recovery(), Duration::ZERO);
        assert!(!m.is_degraded());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // A hefty transient rate with generous retries: every transition
        // eventually completes, and the recovery shows up in telemetry
        // and per-record accounting.
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let scheme = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
            .partition(&d)
            .unwrap()
            .best
            .unwrap()
            .scheme;
        let policy = RecoveryPolicy { max_retries: 10, ..RecoveryPolicy::default() };
        let mut m = ConfigurationManager::with_policy(
            scheme,
            IcapController::with_faults(IcapModel::virtex5(), FaultModel::seeded(0.3, 77)),
            policy,
        );
        let walk: Vec<usize> = (0..8).chain(0..8).collect();
        let (_, time) = m.run_walk(&walk, false).expect("10 retries at rate 0.3 always recover");
        let t = m.telemetry();
        assert!(t.faults > 0, "rate 0.3 over 16 transitions must fault");
        assert!(t.retries > 0);
        assert_eq!(t.availability(), 1.0, "everything recovered");
        assert!(t.recovery_episodes > 0);
        assert!(t.mean_time_to_recovery() > Duration::ZERO);
        assert_eq!(t.retry_histogram.iter().sum::<u64>(), t.recovery_episodes);
        let rec_recovery: Duration = m.log().iter().map(|r| r.recovery_time).sum();
        assert!(rec_recovery > Duration::ZERO);
        assert!(time >= rec_recovery, "recovery is part of measured time");
    }

    #[test]
    fn persistent_fault_is_scrubbed_and_reloaded() {
        let mut m = disjoint_manager(
            RecoveryPolicy { max_retries: 1, scrub: true, ..RecoveryPolicy::default() },
            FaultModel::none(),
        );
        m.transition(0).unwrap();
        let r = region_needed_by(&m, 1);
        // Corrupt the region between transitions (an SEU strike).
        let mut faulty = disjoint_manager(
            RecoveryPolicy { max_retries: 1, scrub: true, ..RecoveryPolicy::default() },
            FaultModel::seeded(0.0, 1).with_persistent_region(r),
        );
        let rec = faulty.transition(1).expect("scrub repairs the persistent fault");
        assert!(rec.retries >= 1);
        assert!(rec.recovery_time > Duration::ZERO);
        let t = faulty.telemetry();
        assert!(t.scrubs >= 1, "recovery must have scrubbed");
        assert_eq!(t.availability(), 1.0);
        assert!(!faulty.is_degraded());
        // Sanity: the healthy manager loads the same region fault-free.
        assert!(m.transition(1).is_ok());
    }

    #[test]
    fn exhausted_recovery_blacklists_and_degrades() {
        // Persistent fault, no scrub: recovery can never succeed. With a
        // threshold of 2 the second exhaustion blacklists the region.
        let policy = RecoveryPolicy {
            max_retries: 1,
            scrub: false,
            blacklist_threshold: 2,
            safe_config: None,
            ..RecoveryPolicy::default()
        };
        let mut m = disjoint_manager(policy, FaultModel::none());
        m.transition(0).unwrap();
        let r = region_needed_by(&m, 1);
        let mut faulty =
            disjoint_manager(policy, FaultModel::seeded(0.0, 1).with_persistent_region(r));
        faulty.transition(0).expect("configuration 0 avoids the faulty region");

        let err = faulty.transition(1).unwrap_err();
        assert!(
            matches!(err, RuntimeError::RegionFault { region, attempts: 2, .. } if region == r),
            "{err}"
        );
        assert!(!faulty.is_degraded(), "below the blacklist threshold");
        assert_eq!(faulty.current(), None, "fabric left between configurations");

        let err = faulty.transition(1).unwrap_err();
        assert!(matches!(err, RuntimeError::RegionFault { .. }), "{err}");
        assert!(faulty.is_degraded(), "second exhaustion blacklists");
        assert_eq!(faulty.blacklisted_regions(), vec![r]);
        assert_eq!(faulty.telemetry().blacklisted, vec![r]);

        // Degraded mode: configuration 1 is now refused up front…
        let err = faulty.transition(1).unwrap_err();
        assert!(
            matches!(err, RuntimeError::RegionBlacklisted { region, config: 1 } if region == r),
            "{err}"
        );
        // …but configuration 0 (which does not need the region) is
        // still served.
        assert!(faulty.config_available(0));
        assert!(!faulty.config_available(1));
        assert_eq!(faulty.available_configurations(), vec![0]);
        faulty.transition(0).expect("degraded mode keeps serving configuration 0");
        assert!(faulty.telemetry().availability() < 1.0);
    }

    #[test]
    fn safe_config_fallback_catches_failed_transitions() {
        let policy = RecoveryPolicy {
            max_retries: 0,
            scrub: false,
            blacklist_threshold: 1,
            safe_config: Some(0),
            ..RecoveryPolicy::default()
        };
        let probe = disjoint_manager(policy, FaultModel::none());
        let r = region_needed_by(&probe, 1);
        let mut m = disjoint_manager(policy, FaultModel::seeded(0.0, 1).with_persistent_region(r));
        m.transition(0).unwrap();
        let rec = m.transition(1).expect("fallback must keep the system alive");
        assert!(rec.fell_back);
        assert_eq!(rec.requested, 1);
        assert_eq!(rec.to, 0);
        assert_eq!(m.current(), Some(0));
        let t = m.telemetry();
        assert_eq!(t.fallbacks, 1);
        assert_eq!(t.transitions_failed, 0);
        assert!(t.availability() < 1.0, "a fallback is not the requested configuration");
        // The failing region is blacklisted (threshold 1), so the next
        // request for configuration 1 short-circuits to the fallback.
        assert!(m.is_degraded());
        let rec = m.transition(1).expect("degraded fallback");
        assert!(rec.fell_back);
    }

    #[test]
    fn cached_blacklist_bitset_matches_direct_scan() {
        // Degraded-mode availability must be identical before and after
        // the bitset cache: at every step of a fault storm, compare
        // `config_available` against a direct recomputation from
        // `blacklisted_regions()` and the scheme's state tables.
        let check = |m: &ConfigurationManager| {
            let black = m.blacklisted_regions();
            for c in 0..m.scheme().num_configurations {
                let direct = (0..m.scheme().regions.len())
                    .all(|r| !(black.contains(&r) && m.scheme().region_states(r)[c].is_some()));
                assert_eq!(m.config_available(c), direct, "config {c}, blacklist {black:?}");
            }
            let direct_avail: Vec<usize> =
                (0..m.scheme().num_configurations).filter(|&c| m.config_available(c)).collect();
            assert_eq!(m.available_configurations(), direct_avail);
        };
        let policy = RecoveryPolicy {
            max_retries: 0,
            scrub: false,
            blacklist_threshold: 1,
            safe_config: None,
            ..RecoveryPolicy::default()
        };
        let probe = disjoint_manager(policy, FaultModel::none());
        let r = region_needed_by(&probe, 1);
        let mut m = disjoint_manager(policy, FaultModel::seeded(0.0, 1).with_persistent_region(r));
        check(&m);
        m.transition(0).expect("configuration 0 avoids the faulty region");
        check(&m);
        assert!(m.transition(1).is_err(), "persistent fault exhausts recovery");
        assert!(m.is_degraded(), "threshold 1 blacklists immediately");
        check(&m);
        assert!(!m.config_available(1));
        assert_eq!(m.available_configurations(), vec![0]);
        m.transition(0).expect("degraded mode keeps serving configuration 0");
        check(&m);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RecoveryPolicy {
            backoff_base: Duration::from_micros(2),
            backoff_cap: Duration::from_micros(100),
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_micros(2));
        assert_eq!(p.backoff(1), Duration::from_micros(4));
        assert_eq!(p.backoff(3), Duration::from_micros(16));
        assert_eq!(p.backoff(10), Duration::from_micros(100), "capped");
        assert_eq!(p.backoff(63), Duration::from_micros(100), "shift saturates");
    }
}
