//! The configuration manager: the software on the paper's embedded
//! processor that moves the system between configurations.

use crate::icap::IcapController;
use prpart_core::Scheme;
use std::time::Duration;

/// One executed transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Configuration before (None at power-up).
    pub from: Option<usize>,
    /// Configuration after.
    pub to: usize,
    /// Regions actually reconfigured.
    pub regions_reconfigured: usize,
    /// Frames written.
    pub frames: u64,
    /// Wall-clock reconfiguration time under the ICAP model.
    pub time: Duration,
}

/// Tracks per-region contents and reconfigures through an
/// [`IcapController`].
///
/// Unlike the design-time cost model — which charges each configuration
/// *pair* independently — the manager has real history: a region whose
/// required partition is already loaded (including via a don't-care hop)
/// costs nothing. Measured trajectory costs therefore bracket the model's
/// optimistic/pessimistic estimates (DESIGN.md §5, ablation A3).
#[derive(Debug, Clone)]
pub struct ConfigurationManager {
    scheme: Scheme,
    icap: IcapController,
    /// Per-region, per-configuration required partition (pool index).
    states: Vec<Vec<Option<usize>>>,
    /// What each region currently holds.
    contents: Vec<Option<usize>>,
    current: Option<usize>,
    log: Vec<TransitionRecord>,
}

impl ConfigurationManager {
    /// Creates a manager for a scheme; all regions start unloaded.
    pub fn new(scheme: Scheme, icap: IcapController) -> Self {
        let states: Vec<Vec<Option<usize>>> =
            (0..scheme.regions.len()).map(|r| scheme.region_states(r)).collect();
        let contents = vec![None; scheme.regions.len()];
        ConfigurationManager { scheme, icap, states, contents, current: None, log: Vec::new() }
    }

    /// The scheme being managed.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The current configuration, if any.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The executed transition log.
    pub fn log(&self) -> &[TransitionRecord] {
        &self.log
    }

    /// The underlying ICAP controller (for statistics).
    pub fn icap(&self) -> &IcapController {
        &self.icap
    }

    /// Switches the system to configuration `to`, reconfiguring exactly
    /// the regions whose required partition is not already loaded.
    /// Returns the record of what happened.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn transition(&mut self, to: usize) -> &TransitionRecord {
        assert!(to < self.scheme.num_configurations, "configuration {to} out of range");
        let mut frames = 0u64;
        let mut time = Duration::ZERO;
        let mut nregions = 0usize;
        for r in 0..self.scheme.regions.len() {
            if let Some(needed) = self.states[r][to] {
                if self.contents[r] != Some(needed) {
                    let f = self.scheme.region_frames(r);
                    frames += f;
                    time += self.icap.load_frames(f);
                    nregions += 1;
                    self.contents[r] = Some(needed);
                }
            }
            // Don't-care: the region keeps whatever it holds.
        }
        let record = TransitionRecord {
            from: self.current,
            to,
            regions_reconfigured: nregions,
            frames,
            time,
        };
        self.current = Some(to);
        self.log.push(record);
        self.log.last().expect("just pushed")
    }

    /// Runs a whole configuration walk; returns (total frames, total
    /// time) excluding the initial load if `skip_first_load` is set (the
    /// usual convention: power-up is a full-bitstream load, not a
    /// reconfiguration).
    pub fn run_walk(&mut self, walk: &[usize], skip_first_load: bool) -> (u64, Duration) {
        let mut frames = 0u64;
        let mut time = Duration::ZERO;
        for (i, &c) in walk.iter().enumerate() {
            let rec = self.transition(c);
            if i == 0 && skip_first_load {
                continue;
            }
            frames += rec.frames;
            time += rec.time;
        }
        (frames, time)
    }

    /// The model's pairwise prediction for comparison (Eq. 8 in frames,
    /// optimistic semantics).
    pub fn predicted_frames(&self, from: usize, to: usize) -> u64 {
        self.scheme
            .transition_frames(from, to, prpart_core::TransitionSemantics::Optimistic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_core::Partitioner;
    use prpart_design::corpus;

    fn case_study_manager() -> ConfigurationManager {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let out = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap();
        ConfigurationManager::new(out.best.unwrap().scheme, IcapController::default())
    }

    #[test]
    fn first_transition_loads_needed_regions() {
        let mut m = case_study_manager();
        let rec = m.transition(0);
        assert_eq!(rec.from, None);
        assert!(rec.frames > 0, "initial load populates regions");
        assert_eq!(m.current(), Some(0));
    }

    #[test]
    fn self_transition_is_free() {
        let mut m = case_study_manager();
        m.transition(0);
        let rec = m.transition(0);
        assert_eq!(rec.frames, 0);
        assert_eq!(rec.regions_reconfigured, 0);
        assert_eq!(rec.time, Duration::ZERO);
    }

    #[test]
    fn measured_hops_bracketed_by_model_semantics() {
        // A measured hop is bounded below by the optimistic pairwise cost
        // (regions whose defined state changes always reload) and above
        // by the pessimistic cost (a don't-care endpoint is charged at
        // most once). See DESIGN.md §5 / ablation A3.
        use prpart_core::TransitionSemantics::{Optimistic, Pessimistic};
        let mut m = case_study_manager();
        m.transition(0);
        let c = m.scheme().num_configurations;
        for to in 1..c {
            let from = m.current().unwrap();
            let opt = m.scheme().transition_frames(from, to, Optimistic);
            let pess = m.scheme().transition_frames(from, to, Pessimistic);
            let rec = m.transition(to);
            assert!(
                (opt..=pess).contains(&rec.frames),
                "hop {from}->{to}: measured {} outside [{opt}, {pess}]",
                rec.frames
            );
        }
    }

    #[test]
    fn dont_care_history_can_beat_pairwise_model() {
        // Special-case design (disjoint configurations): per-module
        // regions are don't-care in the *other* configuration, so a
        // c1 → c2 → c1 walk only loads each region once.
        let d = corpus::special_case_single_mode();
        let matrix = prpart_design::ConnectivityMatrix::from_design(&d);
        let scheme = prpart_core::baselines::per_module(&d, &matrix);
        let mut m = ConfigurationManager::new(scheme, IcapController::default());
        m.transition(0);
        let back_and_forth = m.run_walk(&[1, 0, 1, 0], false);
        // After the first visit to each configuration, regions hold their
        // partitions forever: only the first two hops load anything.
        let loads: Vec<u64> = m.log().iter().map(|r| r.frames).collect();
        assert!(loads[1] > 0, "first visit to c2 loads its regions");
        assert_eq!(&loads[2..], &[0, 0, 0], "everything already resident: {loads:?}");
        assert_eq!(back_and_forth.0, loads[1]);
    }

    #[test]
    fn walk_accounting_sums_records() {
        let mut m = case_study_manager();
        let (frames, time) = m.run_walk(&[0, 1, 2, 3, 0], true);
        let log_frames: u64 = m.log()[1..].iter().map(|r| r.frames).sum();
        assert_eq!(frames, log_frames);
        assert!(time > Duration::ZERO);
        assert_eq!(m.icap().stats().frames, frames + m.log()[0].frames);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_transition_panics() {
        case_study_manager().transition(99);
    }
}
