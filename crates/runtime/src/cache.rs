//! Bitstream caching and configuration prefetching.
//!
//! The paper notes (§IV-B) that real reconfiguration time includes "the
//! delay in fetching partial bitstreams from external memory", and its
//! related work (ref \[4\]) reduces it by *prefetching*. This module models
//! both:
//!
//! * [`MemoryModel`] — external bitstream storage (DDR or flash) with
//!   throughput and latency;
//! * [`BitstreamCache`] — an LRU on-chip buffer holding hot partial
//!   bitstreams by (region, partition);
//! * [`CachingManager`] — a configuration manager that fetches through
//!   the cache and, after every transition, *prefetches* the bitstreams
//!   of the most likely next configuration predicted by an online
//!   first-order Markov model learned from the observed switch history.
//!
//! Prefetch traffic happens during idle time and is accounted separately;
//! only demand misses add to reconfiguration latency.

use crate::icap::IcapController;
use prpart_core::Scheme;
use std::collections::HashMap;
use std::time::Duration;

/// External bitstream storage timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Sustained fetch throughput, bytes per second.
    pub bytes_per_sec: u64,
    /// Per-request latency in nanoseconds.
    pub latency_ns: u64,
}

impl MemoryModel {
    /// DDR2/3-class storage: ~1.6 GB/s effective, 200 ns latency.
    pub const fn ddr() -> Self {
        MemoryModel { bytes_per_sec: 1_600_000_000, latency_ns: 200 }
    }

    /// Parallel flash: ~40 MB/s, 10 µs latency — the painful case the
    /// paper's ICAP-controller work (ref \[15\]) motivates caching for.
    pub const fn flash() -> Self {
        MemoryModel { bytes_per_sec: 40_000_000, latency_ns: 10_000 }
    }

    /// Time to fetch `bytes` from storage.
    pub fn fetch_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.latency_ns + bytes * 1_000_000_000 / self.bytes_per_sec)
    }
}

/// An LRU cache of partial bitstreams keyed by (region, partition).
#[derive(Debug, Clone)]
pub struct BitstreamCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// Key → size; recency tracked by the queue below.
    entries: HashMap<(usize, usize), u64>,
    /// LRU order, most recent last.
    order: Vec<(usize, usize)>,
    hits: u64,
    misses: u64,
}

impl BitstreamCache {
    /// Creates a cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        BitstreamCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently held.
    pub fn used(&self) -> u64 {
        self.used_bytes
    }

    /// (hits, misses) since creation — counts only demand lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Demand lookup: records a hit or miss.
    pub fn lookup(&mut self, key: (usize, usize)) -> bool {
        if self.entries.contains_key(&key) {
            self.hits += 1;
            self.touch(key);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Peeks without affecting statistics (used by prefetch).
    pub fn contains(&self, key: (usize, usize)) -> bool {
        self.entries.contains_key(&key)
    }

    fn touch(&mut self, key: (usize, usize)) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push(key);
        }
    }

    /// Inserts a bitstream of `bytes`, evicting LRU entries as needed.
    /// Oversized items (bigger than the whole cache) are not cached.
    pub fn insert(&mut self, key: (usize, usize), bytes: u64) {
        if bytes > self.capacity_bytes {
            return;
        }
        if self.entries.contains_key(&key) {
            self.touch(key);
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes && !self.order.is_empty() {
            let victim = self.order.remove(0);
            // Order and map agree by construction; a missing entry
            // simply frees nothing.
            self.used_bytes -= self.entries.remove(&victim).unwrap_or(0);
        }
        self.entries.insert(key, bytes);
        self.order.push(key);
        self.used_bytes += bytes;
    }

    /// Evicts one entry (verify-on-load found it corrupt, or it is being
    /// superseded). Returns true if it was cached.
    pub fn evict(&mut self, key: (usize, usize)) -> bool {
        match self.entries.remove(&key) {
            Some(sz) => {
                self.used_bytes -= sz;
                self.order.retain(|&k| k != key);
                true
            }
            None => false,
        }
    }

    /// Drops every cached bitstream of `region` (all partitions) and
    /// returns how many entries were removed. Used when a region is
    /// blacklisted in degraded mode: its bitstreams must never be
    /// served again, and the space is better spent on healthy regions.
    pub fn invalidate_region(&mut self, region: usize) -> usize {
        let victims: Vec<(usize, usize)> =
            self.entries.keys().copied().filter(|&(r, _)| r == region).collect();
        for key in &victims {
            self.used_bytes -= self.entries.remove(key).unwrap_or(0);
        }
        self.order.retain(|&(r, _)| r != region);
        victims.len()
    }
}

/// Online first-order Markov predictor over configuration switches.
#[derive(Debug, Clone)]
pub struct MarkovPredictor {
    counts: Vec<Vec<u64>>,
}

impl MarkovPredictor {
    /// Creates an untrained predictor over `n` configurations.
    pub fn new(n: usize) -> Self {
        MarkovPredictor { counts: vec![vec![0; n]; n] }
    }

    /// Records an observed switch.
    pub fn observe(&mut self, from: usize, to: usize) {
        if from != to {
            self.counts[from][to] += 1;
        }
    }

    /// The most likely next configuration from `current`, if any switch
    /// from it has been observed.
    pub fn predict(&self, current: usize) -> Option<usize> {
        self.counts[current]
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by_key(|&(_, &c)| c)
            .map(|(j, _)| j)
    }
}

/// Cumulative timing breakdown of a [`CachingManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachingStats {
    /// Demand fetch time (cache misses on the critical path).
    pub fetch_time: Duration,
    /// ICAP write time (always on the critical path).
    pub icap_time: Duration,
    /// Bytes prefetched off the critical path.
    pub prefetch_bytes: u64,
}

/// A configuration manager with bitstream caching and Markov prefetch.
#[derive(Debug, Clone)]
pub struct CachingManager {
    scheme: Scheme,
    icap: IcapController,
    memory: MemoryModel,
    cache: BitstreamCache,
    predictor: MarkovPredictor,
    states: Vec<Vec<Option<usize>>>,
    contents: Vec<Option<usize>>,
    /// Regions blacklisted by degraded mode: never fetched, cached, or
    /// prefetched.
    blacklist: Vec<bool>,
    current: Option<usize>,
    stats: CachingStats,
}

impl CachingManager {
    /// Creates a caching manager.
    pub fn new(
        scheme: Scheme,
        icap: IcapController,
        memory: MemoryModel,
        cache_bytes: u64,
    ) -> Self {
        let states: Vec<Vec<Option<usize>>> =
            (0..scheme.regions.len()).map(|r| scheme.region_states(r)).collect();
        let contents = vec![None; scheme.regions.len()];
        let blacklist = vec![false; scheme.regions.len()];
        let n = scheme.num_configurations;
        CachingManager {
            scheme,
            icap,
            memory,
            cache: BitstreamCache::new(cache_bytes),
            predictor: MarkovPredictor::new(n),
            states,
            contents,
            blacklist,
            current: None,
            stats: CachingStats::default(),
        }
    }

    /// Marks `region` as blacklisted (degraded mode): its cached
    /// bitstreams are evicted immediately and neither demand loads nor
    /// the prefetcher will ever touch it again. Returns how many cache
    /// entries were invalidated.
    pub fn blacklist_region(&mut self, region: usize) -> usize {
        self.blacklist[region] = true;
        self.contents[region] = None;
        self.cache.invalidate_region(region)
    }

    /// Regions currently blacklisted, in index order.
    pub fn blacklisted(&self) -> Vec<usize> {
        (0..self.blacklist.len()).filter(|&r| self.blacklist[r]).collect()
    }

    /// The cache (for statistics).
    pub fn cache(&self) -> &BitstreamCache {
        &self.cache
    }

    /// Cumulative timing breakdown.
    pub fn stats(&self) -> CachingStats {
        self.stats
    }

    fn region_bytes(&self, r: usize) -> u64 {
        self.scheme.region_frames(r) * prpart_arch::tile::BYTES_PER_FRAME as u64
    }

    /// Loads needed for switching to `to`: (region, partition) pairs.
    /// Blacklisted regions are excluded — this covers both demand loads
    /// and the prefetcher, so degraded regions are never served.
    fn loads_for(&self, to: usize) -> Vec<(usize, usize)> {
        (0..self.scheme.regions.len())
            .filter(|&r| !self.blacklist[r])
            .filter_map(|r| match self.states[r][to] {
                Some(p) if self.contents[r] != Some(p) => Some((r, p)),
                _ => None,
            })
            .collect()
    }

    /// Switches to configuration `to`; returns the critical-path
    /// reconfiguration latency of this transition.
    pub fn transition(&mut self, to: usize) -> Duration {
        assert!(to < self.scheme.num_configurations, "configuration {to} out of range");
        let mut latency = Duration::ZERO;
        for (r, p) in self.loads_for(to) {
            let bytes = self.region_bytes(r);
            if !self.cache.lookup((r, p)) {
                let fetch = self.memory.fetch_time(bytes);
                self.stats.fetch_time += fetch;
                latency += fetch;
                self.cache.insert((r, p), bytes);
            }
            latency += self.icap.load_frames(self.scheme.region_frames(r));
            self.contents[r] = Some(p);
        }
        self.stats.icap_time = self.icap.stats().busy;
        if let Some(from) = self.current {
            self.predictor.observe(from, to);
        }
        self.current = Some(to);
        // Idle-time prefetch: warm the cache for the predicted next
        // configuration.
        if let Some(next) = self.predictor.predict(to) {
            for (r, p) in self.loads_for(next) {
                if !self.cache.contains((r, p)) {
                    let bytes = self.region_bytes(r);
                    self.cache.insert((r, p), bytes);
                    self.stats.prefetch_bytes += bytes;
                }
            }
        }
        latency
    }

    /// Runs a walk; returns total critical-path latency (first transition
    /// included unless `skip_first_load`).
    pub fn run_walk(&mut self, walk: &[usize], skip_first_load: bool) -> Duration {
        let mut total = Duration::ZERO;
        for (i, &c) in walk.iter().enumerate() {
            let t = self.transition(c);
            if !(i == 0 && skip_first_load) {
                total += t;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{generate_walk, MarkovEnv};
    use prpart_core::Partitioner;
    use prpart_design::corpus;

    fn scheme() -> Scheme {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET).partition(&d).unwrap().best.unwrap().scheme
    }

    #[test]
    fn memory_models_order_sensibly() {
        let bytes = 1_000_000;
        assert!(MemoryModel::flash().fetch_time(bytes) > MemoryModel::ddr().fetch_time(bytes));
        assert_eq!(MemoryModel::ddr().fetch_time(0), Duration::ZERO);
    }

    #[test]
    fn lru_cache_evicts_oldest() {
        let mut c = BitstreamCache::new(100);
        c.insert((0, 0), 60);
        c.insert((1, 1), 30);
        assert!(c.lookup((0, 0)), "hit refreshes (0,0)");
        c.insert((2, 2), 40); // evicts (1,1): LRU after the (0,0) touch
        assert!(c.contains((0, 0)));
        assert!(!c.contains((1, 1)));
        assert!(c.contains((2, 2)));
        assert!(c.used() <= c.capacity());
        // Oversized entries are refused, not evicting everything.
        c.insert((3, 3), 1000);
        assert!(!c.contains((3, 3)));
    }

    #[test]
    fn predictor_learns_the_majority_switch() {
        let mut p = MarkovPredictor::new(3);
        assert_eq!(p.predict(0), None, "untrained");
        p.observe(0, 1);
        p.observe(0, 2);
        p.observe(0, 2);
        assert_eq!(p.predict(0), Some(2));
    }

    #[test]
    fn oscillating_workload_gets_high_hit_rate_with_cache() {
        let s = scheme();
        let n = s.num_configurations;
        // Oscillate between configurations 0 and 3.
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            0.0
                        } else if (i, j) == (0, 3) || (i, j) == (3, 0) {
                            100.0
                        } else {
                            0.5
                        }
                    })
                    .collect()
            })
            .collect();
        let mut env = MarkovEnv::new(weights, 7);
        let walk = generate_walk(&mut env, 0, 500);

        // Generous cache: everything eventually resident.
        let mut cached = CachingManager::new(
            s.clone(),
            IcapController::default(),
            MemoryModel::flash(),
            64 * 1024 * 1024,
        );
        let t_cached = cached.run_walk(&walk, true);
        let (hits, misses) = cached.cache().stats();
        assert!(hits > misses * 3, "hit rate too low: {hits} hits / {misses} misses");

        // Tiny cache: everything misses.
        let mut uncached =
            CachingManager::new(s.clone(), IcapController::default(), MemoryModel::flash(), 1);
        let t_uncached = uncached.run_walk(&walk, true);
        assert!(
            t_cached < t_uncached,
            "caching must cut flash-backed latency: {t_cached:?} vs {t_uncached:?}"
        );
    }

    #[test]
    fn prefetch_warms_the_predicted_bitstreams() {
        // A cache too small for both video-decoder bitstreams (~1.5 MB
        // each): demand loads evict the other one, so only the
        // prefetcher can make the return switch hit.
        let s = scheme();
        let mut m =
            CachingManager::new(s, IcapController::default(), MemoryModel::ddr(), 2 * 1024 * 1024);
        // Teach the predictor 0 -> 2 -> 0 -> 2 ... (configs c1 and c3
        // differ exactly in the video decoder: V1 vs V3, ~1.5 MB each).
        for &c in &[0usize, 2, 0, 2, 0] {
            m.transition(c);
        }
        assert!(m.stats().prefetch_bytes > 0, "prefetcher never fired");
        // While sitting at 0 the predictor prefetched the 2-bitstreams,
        // so switching to 2 adds no demand misses.
        let (h0, m0) = m.cache().stats();
        m.transition(2);
        let (h1, m1) = m.cache().stats();
        assert!(h1 > h0, "expected cache hits on the prefetched switch");
        assert_eq!(m1, m0, "no demand misses after prefetch");
    }

    #[test]
    fn caching_manager_matches_plain_manager_frames() {
        // With an infinite-speed memory, the caching manager's ICAP time
        // equals the plain manager's for the same walk.
        let s = scheme();
        let walk: Vec<usize> = vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 4, 2];
        let mut plain =
            crate::manager::ConfigurationManager::new(s.clone(), IcapController::default());
        let (_, t_plain) = plain.run_walk(&walk, false).unwrap();
        let mut caching = CachingManager::new(
            s,
            IcapController::default(),
            MemoryModel { bytes_per_sec: u64::MAX / 2, latency_ns: 0 },
            1 << 30,
        );
        caching.run_walk(&walk, false);
        assert_eq!(caching.stats().icap_time, t_plain);
    }

    #[test]
    fn invalidate_region_drops_all_its_partitions() {
        let mut c = BitstreamCache::new(100);
        c.insert((0, 0), 20);
        c.insert((0, 1), 20);
        c.insert((1, 0), 20);
        assert_eq!(c.used(), 60);
        assert_eq!(c.invalidate_region(0), 2);
        assert!(!c.contains((0, 0)));
        assert!(!c.contains((0, 1)));
        assert!(c.contains((1, 0)));
        assert_eq!(c.used(), 20);
        // The freed space is usable again and LRU order stays coherent.
        c.insert((2, 0), 80);
        assert!(c.contains((1, 0)));
        assert!(c.contains((2, 0)));
        assert_eq!(c.invalidate_region(7), 0, "unknown region is a no-op");
    }

    #[test]
    fn blacklisted_region_is_never_cached_or_prefetched() {
        let s = scheme();
        let mut m = CachingManager::new(
            s.clone(),
            IcapController::default(),
            MemoryModel::ddr(),
            64 * 1024 * 1024,
        );
        // Warm the cache and the predictor on an oscillating workload.
        for &c in &[0usize, 2, 0, 2, 0] {
            m.transition(c);
        }
        // Blacklist a region that configuration 2 needs.
        let region = (0..s.regions.len())
            .find(|&r| s.region_states(r)[2].is_some() && s.region_frames(r) > 0)
            .expect("config 2 needs a region");
        m.blacklist_region(region);
        assert_eq!(m.blacklisted(), vec![region]);
        // Every partition the region can ever hold must be gone.
        let partitions: Vec<usize> = s.region_states(region).into_iter().flatten().collect();
        assert!(
            !partitions.iter().any(|&p| m.cache().contains((region, p))),
            "blacklisting must evict every cached bitstream of the region"
        );
        // Further transitions and prefetches never repopulate it.
        for &c in &[2usize, 0, 2, 0, 2] {
            m.transition(c);
        }
        assert!(
            !partitions.iter().any(|&p| m.cache().contains((region, p))),
            "prefetcher served a degraded region"
        );
    }
}
