//! Store-backed verified bitstream loading: the runtime end of the
//! transactional artifact store.
//!
//! The flow persists every partial bitstream (digest-guarded) in an
//! [`ArtifactStore`]; at runtime the [`VerifiedBitstreamLoader`] is the
//! only path from that store to the configuration port. Its invariant:
//! **no bitstream that fails [`prpart_flow::bitstream::verify`] is ever
//! served.** Every serve re-verifies the in-memory copy, so a corrupted
//! cache entry (radiation upset, DMA scribble — injected in tests via
//! [`VerifiedBitstreamLoader::corrupt_cached`]) is evicted and reloaded
//! from the store rather than fed to the ICAP; a corrupted *store* copy
//! is quarantined by the store layer and surfaces as a typed
//! [`RuntimeError`], never as bad frames on the port.
//!
//! [`StoreBackedManager`] closes the loop: it couples the loader to an
//! [`IcapController`] so a load request touches the port only after its
//! bitstream has been verified end to end.

use crate::cache::BitstreamCache;
use crate::error::RuntimeError;
use crate::icap::IcapController;
use bytes::Bytes;
use prpart_arch::tile::BYTES_PER_FRAME;
use prpart_flow::bitstream::{self, PartialBitstream};
use prpart_flow::store::{self, ArtifactKind, ArtifactStore, Manifest, StoreError};
use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

/// Framing overhead of a partial bitstream: 24-byte header plus 4-byte
/// CRC trailer.
const FRAMING_BYTES: usize = 28;

/// Cumulative counters of a [`VerifiedBitstreamLoader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoaderStats {
    /// Bitstreams served to callers (each one verified at serve time).
    pub served: u64,
    /// Serves satisfied by an in-memory copy that re-verified clean.
    pub cache_hits: u64,
    /// Reads from the backing store (cold misses and corruption
    /// recoveries alike).
    pub reloads: u64,
    /// Verification failures caught before anything was served — each
    /// one is a bitstream that would otherwise have reached the ICAP.
    pub verify_failures: u64,
    /// Store artifacts quarantined on read because their bytes no
    /// longer matched the manifest digest.
    pub quarantined: u64,
}

/// Serves digest- and structure-verified partial bitstreams out of an
/// [`ArtifactStore`], with an in-memory copy tracked by a
/// [`BitstreamCache`] for LRU accounting.
#[derive(Debug)]
pub struct VerifiedBitstreamLoader {
    store: ArtifactStore,
    manifest: Manifest,
    payloads: HashMap<(usize, usize), PartialBitstream>,
    cache: BitstreamCache,
    stats: LoaderStats,
}

impl VerifiedBitstreamLoader {
    /// Opens the store at `root` and loads its committed manifest.
    ///
    /// Fails with [`RuntimeError::StoreUnavailable`] if the store cannot
    /// be opened or carries no (valid) manifest — a store the flow never
    /// committed has nothing trustworthy to serve.
    pub fn open(root: &Path, cache_capacity_bytes: u64) -> Result<Self, RuntimeError> {
        let mut store = ArtifactStore::open(root)
            .map_err(|e| RuntimeError::StoreUnavailable { detail: e.to_string() })?;
        let manifest = match store.load_manifest() {
            Ok(Some(m)) => m,
            Ok(None) => {
                return Err(RuntimeError::StoreUnavailable {
                    detail: format!(
                        "no committed manifest at {} (flow incomplete or manifest quarantined)",
                        root.display()
                    ),
                })
            }
            Err(e) => return Err(RuntimeError::StoreUnavailable { detail: e.to_string() }),
        };
        Ok(VerifiedBitstreamLoader::from_parts(store, manifest, cache_capacity_bytes))
    }

    /// Wraps an already-open store and manifest.
    pub fn from_parts(store: ArtifactStore, manifest: Manifest, cache_capacity_bytes: u64) -> Self {
        VerifiedBitstreamLoader {
            store,
            manifest,
            payloads: HashMap::new(),
            cache: BitstreamCache::new(cache_capacity_bytes),
            stats: LoaderStats::default(),
        }
    }

    /// The manifest this loader trusts.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Every `(region, partition)` pair the store claims to hold a
    /// partial bitstream for, sorted.
    pub fn available(&self) -> Vec<(usize, usize)> {
        self.manifest.partial_pairs()
    }

    /// Cumulative loader counters.
    pub fn stats(&self) -> LoaderStats {
        self.stats
    }

    /// The LRU bookkeeping cache.
    pub fn cache(&self) -> &BitstreamCache {
        &self.cache
    }

    /// The backing store (mutable — tests inject storage faults through
    /// [`ArtifactStore::fault_model_mut`]).
    pub fn store_mut(&mut self) -> &mut ArtifactStore {
        &mut self.store
    }

    /// Serves the verified partial bitstream for `partition` in
    /// `region`.
    ///
    /// A cached copy is re-verified before every serve; if it fails, it
    /// is evicted and the store copy is read (digest-checked) instead.
    /// Every returned bitstream has passed
    /// [`bitstream::verify`] on the exact bytes returned.
    pub fn fetch(
        &mut self,
        region: usize,
        partition: usize,
    ) -> Result<&PartialBitstream, RuntimeError> {
        let key = (region, partition);
        let mut cached_ok = false;
        if self.cache.contains(key) {
            match self.payloads.get(&key) {
                Some(bs) => match bitstream::verify(bs) {
                    Ok(()) => cached_ok = true,
                    Err(_) => {
                        // In-memory corruption: drop the copy and fall
                        // back to the digest-guarded store.
                        self.stats.verify_failures += 1;
                        self.cache.evict(key);
                        self.payloads.remove(&key);
                    }
                },
                None => {
                    self.cache.evict(key);
                }
            }
        }
        if cached_ok {
            self.stats.cache_hits += 1;
            self.cache.lookup(key);
        } else {
            let bs = self.reload(region, partition)?;
            self.cache.insert(key, bs.data.len() as u64);
            self.payloads.insert(key, bs);
        }
        self.stats.served += 1;
        match self.payloads.get(&key) {
            Some(bs) => Ok(bs),
            None => Err(RuntimeError::BitstreamUnavailable {
                region,
                partition,
                detail: "internal: payload table out of sync with cache".to_string(),
            }),
        }
    }

    /// Reads, digest-checks, and structurally verifies the store copy.
    fn reload(
        &mut self,
        region: usize,
        partition: usize,
    ) -> Result<PartialBitstream, RuntimeError> {
        let name = store::partial_name(region, partition);
        let entry = match self.manifest.entries.get(&name) {
            Some(e) if e.kind == ArtifactKind::Partial => *e,
            Some(e) => {
                return Err(RuntimeError::BitstreamUnavailable {
                    region,
                    partition,
                    detail: format!("manifest lists {name} as a {} artifact", e.kind.as_str()),
                })
            }
            None => {
                return Err(RuntimeError::BitstreamUnavailable {
                    region,
                    partition,
                    detail: format!("{name} is not listed in the store manifest"),
                })
            }
        };
        let bytes = match self.store.read_verified(&name, &entry) {
            Ok(b) => b,
            Err(e @ StoreError::CorruptArtifact { .. }) => {
                // The store has already moved the bad file to its
                // quarantine directory; at runtime there is no producer
                // stage to re-run, so the pair is simply unavailable.
                self.stats.quarantined += 1;
                return Err(RuntimeError::BitstreamUnavailable {
                    region,
                    partition,
                    detail: e.to_string(),
                });
            }
            Err(e @ StoreError::MissingArtifact { .. }) => {
                return Err(RuntimeError::BitstreamUnavailable {
                    region,
                    partition,
                    detail: e.to_string(),
                })
            }
            Err(e) => return Err(RuntimeError::StoreUnavailable { detail: e.to_string() }),
        };
        if bytes.len() < FRAMING_BYTES {
            self.stats.verify_failures += 1;
            return Err(RuntimeError::BitstreamCorrupt {
                region,
                partition,
                detail: format!("{} bytes is shorter than the framing alone", bytes.len()),
            });
        }
        let frames = ((bytes.len() - FRAMING_BYTES) / BYTES_PER_FRAME as usize) as u64;
        let bs = PartialBitstream { region, partition, frames, data: Bytes::from(bytes) };
        if let Err(detail) = bitstream::verify(&bs) {
            // Unreachable when the manifest digest matched (the flow only
            // commits verified artifacts), but the serve-path invariant
            // does not rest on that assumption.
            self.stats.verify_failures += 1;
            return Err(RuntimeError::BitstreamCorrupt { region, partition, detail });
        }
        self.stats.reloads += 1;
        Ok(bs)
    }

    /// Fault-injection hook: flips one bit of the cached copy for
    /// `(region, partition)`. Returns `false` if nothing is cached there
    /// or `byte` is out of range. The next [`fetch`](Self::fetch) must
    /// detect the damage and recover from the store.
    pub fn corrupt_cached(&mut self, region: usize, partition: usize, byte: usize) -> bool {
        match self.payloads.get_mut(&(region, partition)) {
            Some(bs) if byte < bs.data.len() => {
                let mut v = bs.data.to_vec();
                v[byte] ^= 0x01;
                bs.data = Bytes::from(v);
                true
            }
            _ => false,
        }
    }
}

/// A configuration manager that only ever feeds the ICAP bitstreams the
/// [`VerifiedBitstreamLoader`] has verified end to end: digest-checked
/// against the flow's manifest and structurally verified at serve time.
#[derive(Debug)]
pub struct StoreBackedManager {
    loader: VerifiedBitstreamLoader,
    icap: IcapController,
    max_attempts: u32,
    requests: usize,
    total_time: Duration,
}

impl StoreBackedManager {
    /// Couples a loader to a port controller. Port-level CRC rejections
    /// are retried up to 3 times by default.
    pub fn new(loader: VerifiedBitstreamLoader, icap: IcapController) -> Self {
        StoreBackedManager {
            loader,
            icap,
            max_attempts: 3,
            requests: 0,
            total_time: Duration::ZERO,
        }
    }

    /// Overrides the per-load port retry bound (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The loader.
    pub fn loader(&self) -> &VerifiedBitstreamLoader {
        &self.loader
    }

    /// The loader (mutable — for fault-injection hooks in tests).
    pub fn loader_mut(&mut self) -> &mut VerifiedBitstreamLoader {
        &mut self.loader
    }

    /// The port controller's statistics.
    pub fn icap_stats(&self) -> crate::icap::IcapStats {
        self.icap.stats()
    }

    /// Total simulated port time across all completed loads.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// Loads `partition` into `region`: fetches the verified bitstream,
    /// then drives the port, retrying port-level CRC rejections up to
    /// the attempt bound. The port is not touched at all unless the
    /// bitstream verified — an integrity failure costs zero port time.
    pub fn load(&mut self, region: usize, partition: usize) -> Result<Duration, RuntimeError> {
        let request = self.requests;
        self.requests += 1;
        let frames = self.loader.fetch(region, partition)?.frames;
        let mut elapsed = Duration::ZERO;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.icap.try_load_frames(region, frames) {
                Ok(ok) => {
                    elapsed += ok.time;
                    self.total_time += elapsed;
                    return Ok(elapsed);
                }
                Err(fault) => {
                    elapsed += fault.wasted;
                    if attempt >= self.max_attempts {
                        self.total_time += elapsed;
                        return Err(RuntimeError::RegionFault {
                            config: request,
                            region,
                            attempts: attempt,
                            elapsed,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_arch::DeviceLibrary;
    use prpart_design::corpus;
    use prpart_flow::FlowPipeline;

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("prpart-loader-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Runs the flow through a store at `dir` and returns the store dir.
    fn populated_store(tag: &str) -> std::path::PathBuf {
        let dir = store_dir(tag);
        let lib = DeviceLibrary::virtex5();
        let device = lib.by_name("LX30").unwrap().clone();
        let mut store = ArtifactStore::open(&dir).unwrap();
        FlowPipeline::new(device)
            .run_with_store(corpus::abc_example(), &mut store)
            .expect("flow through store succeeds");
        dir
    }

    #[test]
    fn serves_every_manifest_pair_and_hits_cache_on_reuse() {
        let dir = populated_store("serve");
        let mut loader = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap();
        let pairs = loader.available();
        assert!(!pairs.is_empty());
        for &(r, p) in &pairs {
            let bs = loader.fetch(r, p).unwrap();
            assert_eq!((bs.region, bs.partition), (r, p));
            bitstream::verify(bs).unwrap();
        }
        let cold = loader.stats();
        assert_eq!(cold.reloads, pairs.len() as u64);
        assert_eq!(cold.cache_hits, 0);
        for &(r, p) in &pairs {
            loader.fetch(r, p).unwrap();
        }
        let warm = loader.stats();
        assert_eq!(warm.cache_hits, pairs.len() as u64);
        assert_eq!(warm.reloads, cold.reloads, "warm serves touch no storage");
        assert_eq!(warm.verify_failures, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_evicted_and_reloaded_from_store() {
        let dir = populated_store("cachebit");
        let mut loader = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap();
        let (r, p) = loader.available()[0];
        let clean = loader.fetch(r, p).unwrap().data.to_vec();
        assert!(loader.corrupt_cached(r, p, clean.len() / 2));
        let healed = loader.fetch(r, p).unwrap();
        assert_eq!(healed.data.to_vec(), clean, "reload restores the exact bytes");
        let s = loader.stats();
        assert_eq!(s.verify_failures, 1, "the corruption was caught");
        assert_eq!(s.reloads, 2, "cold load plus one recovery reload");
        assert_eq!(s.quarantined, 0, "the store copy was never corrupt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_copy_is_quarantined_and_reported_typed() {
        let dir = populated_store("storebit");
        let mut loader = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap();
        let (r, p) = loader.available()[0];
        // Corrupt the store copy before anything is cached.
        let path = dir.join(store::partial_name(r, p));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = loader.fetch(r, p).unwrap_err();
        assert!(
            matches!(err, RuntimeError::BitstreamUnavailable { region, partition, .. }
                if region == r && partition == p),
            "{err}"
        );
        assert_eq!(loader.stats().quarantined, 1);
        assert_eq!(loader.stats().served, 0, "nothing unverified was served");
        assert!(!path.exists(), "the bad file was moved to quarantine");
        // Other pairs are unaffected.
        if let Some(&(r2, p2)) = loader.available().iter().find(|&&k| k != (r, p)) {
            loader.fetch(r2, p2).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_pair_is_a_typed_miss() {
        let dir = populated_store("miss");
        let mut loader = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap();
        let err = loader.fetch(999, 999).unwrap_err();
        assert!(matches!(err, RuntimeError::BitstreamUnavailable { region: 999, .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_store_is_refused() {
        let dir = store_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap_err();
        assert!(matches!(err, RuntimeError::StoreUnavailable { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manager_never_drives_the_port_with_an_unverified_bitstream() {
        let dir = populated_store("manager");
        let loader = VerifiedBitstreamLoader::open(&dir, u64::MAX).unwrap();
        let mut mgr = StoreBackedManager::new(loader, IcapController::default());
        let (r, p) = mgr.loader().available()[0];
        let t = mgr.load(r, p).unwrap();
        assert!(t > Duration::ZERO);
        let clean_port = mgr.icap_stats();
        assert_eq!(clean_port.transfers, 1);
        // Corrupt the cached copy: the next load must fail *before* the
        // port sees a single frame.
        let len = mgr.loader_mut().fetch(r, p).unwrap().data.len();
        assert!(mgr.loader_mut().corrupt_cached(r, p, len / 3));
        // Also corrupt the store copy so recovery has nowhere to go.
        let path = dir.join(store::partial_name(r, p));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x04; // header damage: digest check rejects it
        std::fs::write(&path, &bytes).unwrap();
        let err = mgr.load(r, p).unwrap_err();
        assert!(matches!(err, RuntimeError::BitstreamUnavailable { .. }), "{err}");
        assert_eq!(
            mgr.icap_stats(),
            clean_port,
            "integrity failure cost zero port time and zero frames"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
