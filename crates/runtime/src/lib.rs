//! # prpart-runtime — adaptive-system runtime simulator
//!
//! The paper motivates partitioning with *adaptive systems*: the set of
//! valid configurations is known, but the order of transitions depends on
//! the environment (channel conditions, user requirements) and is unknown
//! at design time. This crate simulates that runtime:
//!
//! * [`icap::IcapController`] — models the configuration port: partial
//!   bitstream loads take time per the
//!   [`prpart_arch::IcapModel`] and are accounted.
//! * [`manager::ConfigurationManager`] — the configuration management
//!   software of the paper's static region: tracks what each region
//!   currently holds and reconfigures only the regions whose required
//!   partition differs (so *don't-care* regions keep their contents, and
//!   measured costs can differ from the pairwise model — exactly the
//!   effect DESIGN.md §5 discusses).
//! * [`env`] — environment models that drive configuration switches:
//!   uniform random, Markov chains, and an SNR-random-walk cognitive
//!   radio.
//! * [`montecarlo`] — parallel Monte-Carlo over many adaptation
//!   trajectories (crossbeam scoped threads), comparing measured
//!   reconfiguration cost against the cost model's predictions.
//! * [`profiling`] — transition-count profiling of observed traces,
//!   feeding the partitioner's weighted objective (paper future work).
//! * [`cache`] — bitstream caching with online Markov prefetching
//!   (modelling the configuration-prefetch line of work the paper cites
//!   as ref \[4\]).
//! * [`deadline`] — per-transition deadline monitoring for the real-time
//!   systems the paper's worst-case metric targets.
//!
//! ## Fault tolerance
//!
//! Real configuration ports fail: bitstream CRC checks reject corrupted
//! transfers, radiation upsets flip configuration memory, and port
//! arbitration stalls transfers. The runtime models all three:
//!
//! * [`fault::FaultModel`] — seeded, deterministic fault injection at
//!   the port (CRC rejections, transient stalls, persistent per-region
//!   faults).
//! * [`manager::RecoveryPolicy`] — bounded retry with exponential
//!   backoff, region scrubbing, safe-configuration fallback, and
//!   degraded mode (blacklisting a persistently failing region while
//!   serving every configuration that doesn't need it).
//! * [`error::RuntimeError`] — every failure is a typed error; the
//!   runtime never panics on a fault.
//! * [`telemetry::ReliabilityTelemetry`] — availability, retry
//!   histograms, per-region fault counts, and mean time to recovery.
//! * [`loader::VerifiedBitstreamLoader`] — the runtime end of the flow's
//!   transactional artifact store (`docs/artifact_store.md`): every
//!   bitstream is digest-checked against the committed manifest and
//!   structurally re-verified at serve time, corrupt cache entries are
//!   evicted and reloaded, corrupt store copies quarantined — bad frames
//!   never reach the ICAP ([`loader::StoreBackedManager`]).
//!
//! With no fault model installed (the default) the simulator's behaviour
//! and accounting are identical to the fault-unaware version.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod deadline;
pub mod env;
pub mod error;
pub mod fault;
pub mod icap;
pub mod loader;
pub mod manager;
pub mod montecarlo;
pub mod profiling;
pub mod telemetry;

pub use cache::{BitstreamCache, CachingManager, MarkovPredictor, MemoryModel};
pub use deadline::{worst_transition_time, DeadlineMonitor};
pub use env::{CognitiveRadioEnv, Environment, MarkovEnv, UniformEnv};
pub use error::RuntimeError;
pub use fault::{FaultKind, FaultModel};
pub use icap::{IcapController, IcapStats, LoadFault, LoadSuccess};
pub use loader::{LoaderStats, StoreBackedManager, VerifiedBitstreamLoader};
pub use manager::{ConfigurationManager, RecoveryPolicy, TransitionRecord};
pub use montecarlo::{
    run_monte_carlo, run_monte_carlo_observed, run_monte_carlo_traced, DegradedState,
    MonteCarloConfig, MonteCarloReport, ObservedTransition, RuntimeTrace, WalkStats,
};
pub use profiling::{estimate_weights, TransitionProfile};
pub use telemetry::ReliabilityTelemetry;
