//! Deterministic fault injection for the runtime simulator.
//!
//! Real PR deployments are not the ideal ICAP the paper's cost model
//! assumes: partial bitstreams fail CRC checks, configuration memory is
//! corrupted by single-event upsets, and the port occasionally stalls
//! behind other bus traffic. This module models those failure modes as a
//! *seeded, deterministic* [`FaultModel`] the [`crate::IcapController`]
//! consults on every load attempt, so fault campaigns are exactly
//! reproducible: the same seed and the same call sequence inject the
//! same faults.
//!
//! Three fault classes are modelled:
//!
//! * **CRC/readback verification failures** ([`FaultKind::Crc`]) — the
//!   load is rejected after burning the full transfer time and must be
//!   retried (or scrubbed; see [`crate::RecoveryPolicy`]).
//! * **Transient port stalls** ([`FaultKind::Stall`]) — the load
//!   succeeds but takes a configurable extra latency.
//! * **Persistent per-region faults** — an SEU-corrupted region fails
//!   every load until it is scrubbed ([`FaultModel::scrub`]), the
//!   recovery operation real systems use against configuration-memory
//!   upsets.
//!
//! The zero-fault model ([`FaultModel::none`], or any model with rate
//! `0.0` and no persistent faults) never draws from its generator, so
//! the fault-free path is bit-identical to a simulator without fault
//! injection at all.

use std::collections::BTreeSet;
use std::time::Duration;

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// CRC/readback verification failure: the load is rejected (after
    /// consuming the port for the full transfer) and must be retried.
    Crc,
    /// Transient port stall: the load succeeds after extra latency.
    Stall,
}

/// A seeded, deterministic source of injected faults.
///
/// Sampling is driven by a SplitMix64 generator owned by the model, so
/// a fixed seed plus a fixed sequence of load attempts reproduces the
/// identical fault pattern — the property the determinism-guard tests
/// lock down.
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Per-load-attempt transient fault probability in `[0, 1)`.
    rate: f64,
    /// Fraction of transient faults that are stalls rather than CRC
    /// rejections.
    stall_fraction: f64,
    /// Extra latency added by one stall.
    stall_latency: Duration,
    /// Regions that fail every load until scrubbed.
    persistent: BTreeSet<usize>,
    /// SplitMix64 state.
    state: u64,
}

impl FaultModel {
    /// A model that never injects anything; the default for every
    /// controller. Never touches its generator, so the fault-free path
    /// stays byte-identical to a simulator without fault injection.
    pub fn none() -> Self {
        FaultModel::seeded(0.0, 0)
    }

    /// A model injecting transient faults with probability `rate` per
    /// load attempt, driven by `seed`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= rate < 1.0` (a rate of 1.0 would make every
    /// recovery unbounded by construction).
    pub fn seeded(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "fault rate {rate} outside [0, 1)");
        FaultModel {
            rate,
            stall_fraction: 0.25,
            stall_latency: Duration::from_micros(5),
            persistent: BTreeSet::new(),
            state: seed,
        }
    }

    /// Sets the fraction of transient faults that are port stalls
    /// (the rest are CRC rejections).
    ///
    /// # Panics
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn with_stall_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "stall fraction {fraction} outside [0, 1]");
        self.stall_fraction = fraction;
        self
    }

    /// Sets the extra latency one stall adds to a load.
    pub fn with_stall_latency(mut self, latency: Duration) -> Self {
        self.stall_latency = latency;
        self
    }

    /// Marks `region` as persistently faulty: every load on it fails
    /// CRC until the region is scrubbed.
    pub fn with_persistent_region(mut self, region: usize) -> Self {
        self.persistent.insert(region);
        self
    }

    /// The per-load transient fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The extra latency one stall adds.
    pub fn stall_latency(&self) -> Duration {
        self.stall_latency
    }

    /// Regions currently marked persistently faulty.
    pub fn persistent_regions(&self) -> Vec<usize> {
        self.persistent.iter().copied().collect()
    }

    /// True when the model can never inject a fault (rate zero and no
    /// persistent regions).
    pub fn is_inert(&self) -> bool {
        self.rate <= 0.0 && self.persistent.is_empty()
    }

    /// Samples the fault (if any) affecting one load attempt on
    /// `region`. Persistent faults fire unconditionally and consume no
    /// randomness; with a zero rate no randomness is consumed either.
    pub fn sample_load(&mut self, region: usize) -> Option<FaultKind> {
        if self.persistent.contains(&region) {
            return Some(FaultKind::Crc);
        }
        if self.rate <= 0.0 {
            return None;
        }
        if self.next_f64() >= self.rate {
            return None;
        }
        if self.stall_fraction > 0.0 && self.next_f64() < self.stall_fraction {
            Some(FaultKind::Stall)
        } else {
            Some(FaultKind::Crc)
        }
    }

    /// Repairs a persistent fault on `region` (configuration-memory
    /// scrubbing). A no-op when the region is healthy.
    pub fn scrub(&mut self, region: usize) {
        self.persistent.remove(&region);
    }

    /// SplitMix64: deterministic, dependency-free, full-period.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_model_never_faults() {
        let mut m = FaultModel::none();
        assert!(m.is_inert());
        for r in 0..100 {
            assert_eq!(m.sample_load(r % 7), None);
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_fault_sequences() {
        let mut a = FaultModel::seeded(0.4, 1234);
        let mut b = FaultModel::seeded(0.4, 1234);
        let sa: Vec<_> = (0..500).map(|i| a.sample_load(i % 5)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.sample_load(i % 5)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|f| f.is_some()), "rate 0.4 must fire");
        assert!(sa.iter().any(|f| f.is_none()), "rate 0.4 must also pass");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultModel::seeded(0.4, 1);
        let mut b = FaultModel::seeded(0.4, 2);
        let sa: Vec<_> = (0..500).map(|i| a.sample_load(i % 5)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.sample_load(i % 5)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn rate_roughly_matches_observed_frequency() {
        let mut m = FaultModel::seeded(0.2, 99);
        let n = 10_000;
        let faults = (0..n).filter(|&i| m.sample_load(i % 3).is_some()).count();
        let observed = faults as f64 / n as f64;
        assert!((0.15..=0.25).contains(&observed), "observed fault rate {observed} far from 0.2");
    }

    #[test]
    fn persistent_region_fails_until_scrubbed() {
        let mut m = FaultModel::seeded(0.0, 7).with_persistent_region(2);
        assert!(!m.is_inert());
        assert_eq!(m.sample_load(2), Some(FaultKind::Crc));
        assert_eq!(m.sample_load(2), Some(FaultKind::Crc));
        assert_eq!(m.sample_load(1), None, "other regions unaffected");
        m.scrub(2);
        assert_eq!(m.sample_load(2), None, "scrub repairs the region");
        assert!(m.is_inert());
    }

    #[test]
    fn stall_fraction_splits_fault_kinds() {
        let mut m = FaultModel::seeded(0.8, 5).with_stall_fraction(0.5);
        let kinds: Vec<_> = (0..2000).filter_map(|_| m.sample_load(0)).collect();
        assert!(kinds.contains(&FaultKind::Stall));
        assert!(kinds.contains(&FaultKind::Crc));
        let mut all_crc = FaultModel::seeded(0.8, 5).with_stall_fraction(0.0);
        assert!((0..2000).filter_map(|_| all_crc.sample_load(0)).all(|k| k == FaultKind::Crc));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn certain_failure_rate_is_rejected() {
        FaultModel::seeded(1.0, 0);
    }
}
