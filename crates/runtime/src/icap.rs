//! ICAP controller model: timed bitstream loads with cumulative
//! accounting and optional deterministic fault injection.

use crate::fault::{FaultKind, FaultModel};
use prpart_arch::IcapModel;
use std::time::Duration;

/// Cumulative transfer statistics of a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IcapStats {
    /// Completed load transactions.
    pub transfers: u64,
    /// Total frames written.
    pub frames: u64,
    /// Total payload bytes written.
    pub bytes: u64,
    /// Total port busy time.
    pub busy: Duration,
    /// Injected faults observed at the port (CRC rejections and
    /// stalls).
    pub faults: u64,
    /// Port time consumed by CRC-rejected load attempts.
    pub wasted: Duration,
    /// Extra latency accumulated by transient port stalls.
    pub stall_time: Duration,
    /// Scrub operations performed.
    pub scrubs: u64,
}

/// A successful (possibly stalled) load through the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSuccess {
    /// Total transfer time, including any stall latency.
    pub time: Duration,
    /// The stall portion of `time` (zero for a clean load).
    pub stall: Duration,
}

/// A CRC-rejected load attempt: the port was busy for `wasted` but the
/// region's configuration is now undefined and must be rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadFault {
    /// The fault kind (always [`FaultKind::Crc`] today; stalls do not
    /// fail the load).
    pub kind: FaultKind,
    /// The region whose load was rejected.
    pub region: usize,
    /// Port time burned by the failed attempt.
    pub wasted: Duration,
}

/// A simulated ICAP controller (paper ref \[15\] is the authors'
/// open-source controller; this model reproduces its throughput
/// behaviour). An optional [`FaultModel`] injects deterministic CRC
/// failures and port stalls into [`IcapController::try_load_frames`].
#[derive(Debug, Clone)]
pub struct IcapController {
    model: IcapModel,
    faults: FaultModel,
    stats: IcapStats,
}

impl Default for IcapController {
    fn default() -> Self {
        IcapController::new(IcapModel::virtex5())
    }
}

impl IcapController {
    /// Creates a fault-free controller over a port model.
    pub fn new(model: IcapModel) -> Self {
        IcapController::with_faults(model, FaultModel::none())
    }

    /// Creates a controller whose loads are subject to `faults`.
    pub fn with_faults(model: IcapModel, faults: FaultModel) -> Self {
        IcapController { model, faults, stats: IcapStats::default() }
    }

    /// The port model.
    pub fn model(&self) -> &IcapModel {
        &self.model
    }

    /// The fault model currently injected.
    pub fn fault_model(&self) -> &FaultModel {
        &self.faults
    }

    /// Loads a partial bitstream of `frames` frames on the ideal
    /// (fault-exempt) path; returns the transfer time and accounts it.
    pub fn load_frames(&mut self, frames: u64) -> Duration {
        let t = self.model.time_for_frames(frames);
        if frames > 0 {
            self.account_success(frames, t);
        }
        t
    }

    /// Attempts to load a partial bitstream of `frames` frames into
    /// `region`, consulting the fault model.
    ///
    /// * Clean load — `Ok` with the plain transfer time.
    /// * Stall — `Ok` with the stall latency added (and reported).
    /// * CRC rejection — `Err`; the port was busy for the full transfer
    ///   but the frames are **not** accounted as written, and the
    ///   region's contents are now undefined.
    ///
    /// With an inert fault model this is exactly [`load_frames`]
    /// (same accounting, same result), keeping the zero-fault path
    /// byte-identical to the fault-unaware simulator.
    ///
    /// [`load_frames`]: IcapController::load_frames
    pub fn try_load_frames(
        &mut self,
        region: usize,
        frames: u64,
    ) -> Result<LoadSuccess, LoadFault> {
        if frames == 0 {
            return Ok(LoadSuccess { time: Duration::ZERO, stall: Duration::ZERO });
        }
        let t = self.model.time_for_frames(frames);
        match self.faults.sample_load(region) {
            None => {
                self.account_success(frames, t);
                Ok(LoadSuccess { time: t, stall: Duration::ZERO })
            }
            Some(FaultKind::Stall) => {
                let stall = self.faults.stall_latency();
                self.account_success(frames, t + stall);
                self.stats.faults += 1;
                self.stats.stall_time += stall;
                Ok(LoadSuccess { time: t + stall, stall })
            }
            Some(FaultKind::Crc) => {
                self.stats.faults += 1;
                self.stats.wasted += t;
                self.stats.busy += t;
                Err(LoadFault { kind: FaultKind::Crc, region, wasted: t })
            }
        }
    }

    /// Scrubs `region` (readback, verify, rewrite of its `frames`
    /// frames): repairs a persistent fault in the fault model and
    /// returns the port time consumed.
    pub fn scrub(&mut self, region: usize, frames: u64) -> Duration {
        let t = self.model.scrub_time_for_frames(frames);
        self.stats.scrubs += 1;
        self.stats.busy += t;
        self.faults.scrub(region);
        t
    }

    fn account_success(&mut self, frames: u64, time: Duration) {
        self.stats.transfers += 1;
        self.stats.frames += frames;
        self.stats.bytes += frames * prpart_arch::tile::BYTES_PER_FRAME as u64;
        self.stats.busy += time;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IcapStats {
        self.stats
    }

    /// Resets the statistics (the fault model keeps its state).
    pub fn reset(&mut self) {
        self.stats = IcapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_accumulate() {
        let mut c = IcapController::default();
        let t1 = c.load_frames(100);
        let t2 = c.load_frames(50);
        assert!(t1 > t2);
        let s = c.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.frames, 150);
        assert_eq!(s.bytes, 150 * 164);
        assert_eq!(s.busy, t1 + t2);
        assert_eq!(s.faults, 0);
    }

    #[test]
    fn zero_frames_is_free() {
        let mut c = IcapController::default();
        assert_eq!(c.load_frames(0), Duration::ZERO);
        assert_eq!(c.stats().transfers, 0);
        assert_eq!(
            c.try_load_frames(0, 0),
            Ok(LoadSuccess { time: Duration::ZERO, stall: Duration::ZERO })
        );
        assert_eq!(c.stats().transfers, 0);
    }

    #[test]
    fn reset_clears() {
        let mut c = IcapController::default();
        c.load_frames(10);
        c.reset();
        assert_eq!(c.stats(), IcapStats::default());
    }

    #[test]
    fn inert_try_load_matches_plain_load_exactly() {
        let mut a = IcapController::default();
        let mut b = IcapController::default();
        for frames in [100u64, 50, 0, 7] {
            let ta = a.load_frames(frames);
            let ok = b.try_load_frames(3, frames).expect("inert model never faults");
            assert_eq!(ok.time, ta);
            assert_eq!(ok.stall, Duration::ZERO);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn crc_rejection_burns_the_port_but_writes_nothing() {
        let faults = FaultModel::seeded(0.0, 1).with_persistent_region(2);
        let mut c = IcapController::with_faults(IcapModel::virtex5(), faults);
        let err = c.try_load_frames(2, 100).unwrap_err();
        assert_eq!(err.kind, FaultKind::Crc);
        assert_eq!(err.region, 2);
        assert!(err.wasted > Duration::ZERO);
        let s = c.stats();
        assert_eq!(s.transfers, 0);
        assert_eq!(s.frames, 0);
        assert_eq!(s.faults, 1);
        assert_eq!(s.wasted, err.wasted);
        assert_eq!(s.busy, err.wasted);
        // A healthy region still loads.
        assert!(c.try_load_frames(1, 100).is_ok());
        assert_eq!(c.stats().frames, 100);
    }

    #[test]
    fn stalls_succeed_with_extra_latency() {
        let faults = FaultModel::seeded(0.5, 9)
            .with_stall_fraction(1.0)
            .with_stall_latency(Duration::from_micros(50));
        let mut c = IcapController::with_faults(IcapModel::virtex5(), faults);
        let clean = IcapModel::virtex5().time_for_frames(100);
        // With stall fraction 1.0 no load ever fails; about half stall.
        let mut stalled = 0u64;
        for _ in 0..100 {
            let ok = c.try_load_frames(0, 100).expect("stalls do not fail the load");
            if ok.stall > Duration::ZERO {
                stalled += 1;
                assert_eq!(ok.stall, Duration::from_micros(50));
                assert_eq!(ok.time, clean + Duration::from_micros(50));
            } else {
                assert_eq!(ok.time, clean);
            }
        }
        let s = c.stats();
        assert!(stalled > 0, "rate 0.5 over 100 loads must stall at least once");
        assert_eq!(s.frames, 100 * 100, "every load succeeded");
        assert_eq!(s.faults, stalled);
        assert_eq!(s.stall_time, Duration::from_micros(50) * stalled as u32);
    }

    #[test]
    fn scrub_repairs_and_accounts() {
        let faults = FaultModel::seeded(0.0, 1).with_persistent_region(0);
        let mut c = IcapController::with_faults(IcapModel::virtex5(), faults);
        assert!(c.try_load_frames(0, 10).is_err());
        let t = c.scrub(0, 10);
        assert!(t > Duration::ZERO);
        assert_eq!(c.stats().scrubs, 1);
        assert!(c.try_load_frames(0, 10).is_ok(), "scrub repairs the region");
    }
}
