//! ICAP controller model: timed bitstream loads with cumulative
//! accounting.

use prpart_arch::IcapModel;
use std::time::Duration;

/// Cumulative transfer statistics of a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IcapStats {
    /// Completed load transactions.
    pub transfers: u64,
    /// Total frames written.
    pub frames: u64,
    /// Total payload bytes written.
    pub bytes: u64,
    /// Total port busy time.
    pub busy: Duration,
}

/// A simulated ICAP controller (paper ref \[15\] is the authors'
/// open-source controller; this model reproduces its throughput
/// behaviour).
#[derive(Debug, Clone)]
pub struct IcapController {
    model: IcapModel,
    stats: IcapStats,
}

impl Default for IcapController {
    fn default() -> Self {
        IcapController::new(IcapModel::virtex5())
    }
}

impl IcapController {
    /// Creates a controller over a port model.
    pub fn new(model: IcapModel) -> Self {
        IcapController { model, stats: IcapStats::default() }
    }

    /// The port model.
    pub fn model(&self) -> &IcapModel {
        &self.model
    }

    /// Loads a partial bitstream of `frames` frames; returns the transfer
    /// time and accounts it.
    pub fn load_frames(&mut self, frames: u64) -> Duration {
        let t = self.model.time_for_frames(frames);
        if frames > 0 {
            self.stats.transfers += 1;
            self.stats.frames += frames;
            self.stats.bytes += frames * prpart_arch::tile::BYTES_PER_FRAME as u64;
            self.stats.busy += t;
        }
        t
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IcapStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset(&mut self) {
        self.stats = IcapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_accumulate() {
        let mut c = IcapController::default();
        let t1 = c.load_frames(100);
        let t2 = c.load_frames(50);
        assert!(t1 > t2);
        let s = c.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.frames, 150);
        assert_eq!(s.bytes, 150 * 164);
        assert_eq!(s.busy, t1 + t2);
    }

    #[test]
    fn zero_frames_is_free() {
        let mut c = IcapController::default();
        assert_eq!(c.load_frames(0), Duration::ZERO);
        assert_eq!(c.stats().transfers, 0);
    }

    #[test]
    fn reset_clears() {
        let mut c = IcapController::default();
        c.load_frames(10);
        c.reset();
        assert_eq!(c.stats(), IcapStats::default());
    }
}
