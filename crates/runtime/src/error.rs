//! Typed runtime errors.
//!
//! The runtime simulator fails loudly and typed, never with a panic:
//! every way a reconfiguration can go wrong in the field maps to a
//! [`RuntimeError`] variant callers can match on.

use std::time::Duration;

/// A failure of the reconfiguration runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The requested configuration index does not exist in the scheme.
    ConfigurationOutOfRange {
        /// The index that was requested.
        requested: usize,
        /// How many configurations the scheme has.
        num_configurations: usize,
    },
    /// A region's reconfiguration kept failing after every recovery
    /// step the policy allows (retries, backoff, scrub).
    RegionFault {
        /// The configuration being switched to.
        config: usize,
        /// The region whose load could not be completed.
        region: usize,
        /// Load attempts made (initial try plus retries).
        attempts: u32,
        /// Simulated time consumed by the failed recovery.
        elapsed: Duration,
    },
    /// The requested configuration needs a region that has been
    /// blacklisted in degraded mode.
    RegionBlacklisted {
        /// The configuration that was requested.
        config: usize,
        /// The blacklisted region it needs.
        region: usize,
    },
    /// The artifact store (or its manifest) could not be used at all.
    /// The detail is the rendered store error (kept as text so this enum
    /// stays `Eq`-comparable in tests and telemetry).
    StoreUnavailable {
        /// Rendered cause.
        detail: String,
    },
    /// No verified bitstream exists for a (region, partition) the scheme
    /// needs — missing from the manifest, or quarantined on read and not
    /// regenerable at runtime.
    BitstreamUnavailable {
        /// The region to be reconfigured.
        region: usize,
        /// The partition the scheme wants loaded there.
        partition: usize,
        /// Rendered cause.
        detail: String,
    },
    /// A bitstream failed structural verification on load. It was never
    /// fed to the ICAP.
    BitstreamCorrupt {
        /// The region it would have configured.
        region: usize,
        /// The partition it claims to implement.
        partition: usize,
        /// What the verifier rejected.
        detail: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ConfigurationOutOfRange { requested, num_configurations } => write!(
                f,
                "configuration {requested} out of range (scheme has {num_configurations} configurations)"
            ),
            RuntimeError::RegionFault { config, region, attempts, elapsed } => write!(
                f,
                "region {region} failed reconfiguration to configuration {config} after {attempts} attempts ({elapsed:?} lost)"
            ),
            RuntimeError::RegionBlacklisted { config, region } => write!(
                f,
                "configuration {config} unavailable in degraded mode: needs blacklisted region {region}"
            ),
            RuntimeError::StoreUnavailable { detail } => {
                write!(f, "artifact store unavailable: {detail}")
            }
            RuntimeError::BitstreamUnavailable { region, partition, detail } => write!(
                f,
                "no verified bitstream for partition {partition} in region PRR{}: {detail}",
                region + 1
            ),
            RuntimeError::BitstreamCorrupt { region, partition, detail } => write!(
                f,
                "bitstream for partition {partition} in region PRR{} failed verification (not loaded): {detail}",
                region + 1
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = RuntimeError::ConfigurationOutOfRange { requested: 9, num_configurations: 4 };
        assert!(e.to_string().contains("out of range"));
        assert!(e.to_string().contains('9'));
        let e = RuntimeError::RegionFault {
            config: 1,
            region: 2,
            attempts: 4,
            elapsed: Duration::from_micros(3),
        };
        assert!(e.to_string().contains("region 2"));
        let e = RuntimeError::RegionBlacklisted { config: 5, region: 0 };
        assert!(e.to_string().contains("degraded"));
    }
}
