//! Per-transition deadline monitoring for real-time adaptive systems.
//!
//! The paper motivates the worst-case metric with systems that "cannot
//! tolerate reconfiguration time beyond a certain limit" (§IV-C). This
//! module provides the runtime side of that requirement: a manager
//! wrapper that checks every executed transition against a deadline and
//! records violations — the measurable counterpart of designing with
//! `Objective::WorstCase`.
//!
//! Under fault injection each violation also records how much of the
//! transition time was recovery overhead, so misses can be attributed:
//! a violation whose clean time fits the deadline was *caused* by
//! retries ([`DeadlineMonitor::recovery_attributed_violations`]).

use crate::error::RuntimeError;
use crate::icap::IcapController;
use crate::manager::{ConfigurationManager, RecoveryPolicy};
use prpart_arch::IcapModel;
use prpart_core::Scheme;
use std::time::Duration;

/// One deadline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Source configuration (None = initial load).
    pub from: Option<usize>,
    /// Destination configuration.
    pub to: usize,
    /// Measured reconfiguration time.
    pub took: Duration,
    /// The deadline that was missed.
    pub deadline: Duration,
    /// The portion of `took` spent recovering from injected faults.
    pub recovery_time: Duration,
}

impl Violation {
    /// True when the transition would have met the deadline without its
    /// recovery overhead: the miss is attributable to fault recovery,
    /// not to the scheme's design.
    pub fn attributed_to_recovery(&self) -> bool {
        self.recovery_time > Duration::ZERO && self.took - self.recovery_time <= self.deadline
    }
}

/// A configuration manager with a per-transition deadline.
#[derive(Debug, Clone)]
pub struct DeadlineMonitor {
    manager: ConfigurationManager,
    deadline: Duration,
    violations: Vec<Violation>,
    transitions: u64,
}

impl DeadlineMonitor {
    /// Wraps a scheme with a per-transition reconfiguration deadline.
    pub fn new(scheme: Scheme, icap: IcapController, deadline: Duration) -> Self {
        DeadlineMonitor::with_policy(scheme, icap, deadline, RecoveryPolicy::default())
    }

    /// Like [`new`](DeadlineMonitor::new) with an explicit recovery
    /// policy for the underlying manager.
    pub fn with_policy(
        scheme: Scheme,
        icap: IcapController,
        deadline: Duration,
        policy: RecoveryPolicy,
    ) -> Self {
        DeadlineMonitor {
            manager: ConfigurationManager::with_policy(scheme, icap, policy),
            deadline,
            violations: Vec::new(),
            transitions: 0,
        }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Executed transitions (excluding free self-transitions).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Recorded violations, in order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The wrapped manager (telemetry, degraded-mode state).
    pub fn manager(&self) -> &ConfigurationManager {
        &self.manager
    }

    /// Violation rate over executed transitions.
    pub fn violation_rate(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.violations.len() as f64 / self.transitions as f64
        }
    }

    /// Violations that only missed the deadline because of fault
    /// recovery overhead (retries, backoff, stalls, scrubs).
    pub fn recovery_attributed_violations(&self) -> usize {
        self.violations.iter().filter(|v| v.attributed_to_recovery()).count()
    }

    /// Switches configuration, checking the deadline. Returns the
    /// transition time and whether the deadline held, or the manager's
    /// typed error when the transition failed outright (a failed
    /// transition is counted but has no deadline verdict).
    pub fn transition(&mut self, to: usize) -> Result<(Duration, bool), RuntimeError> {
        let from = self.manager.current();
        let rec = match self.manager.transition(to) {
            Ok(rec) => rec,
            Err(e) => {
                self.transitions += 1;
                return Err(e);
            }
        };
        let took = rec.time;
        let recovery_time = rec.recovery_time;
        self.transitions += 1;
        let ok = took <= self.deadline;
        if !ok {
            self.violations.push(Violation {
                from,
                to,
                took,
                deadline: self.deadline,
                recovery_time,
            });
        }
        Ok((took, ok))
    }

    /// Runs a walk (the first transition is the initial full load and is
    /// exempt from the deadline, as on real systems). Stops at the first
    /// failed transition.
    pub fn run_walk(&mut self, walk: &[usize]) -> Result<(), RuntimeError> {
        if walk.is_empty() {
            return Ok(());
        }
        self.manager.transition(walk[0])?;
        for &c in &walk[1..] {
            self.transition(c)?;
        }
        Ok(())
    }
}

/// Design-time bound: the largest possible transition of a scheme under
/// an ICAP model — every region reloaded, each paying its own transfer
/// (the controller issues one transaction per region, so per-region
/// overheads sum). This dominates any measured transition, whatever the
/// history; Eq. 11's frame-count worst case is the tile-model view of
/// the same quantity.
pub fn worst_transition_time(scheme: &Scheme, icap: &IcapModel) -> Duration {
    (0..scheme.regions.len()).map(|r| icap.time_for_frames(scheme.region_frames(r))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{generate_walk, UniformEnv};
    use crate::fault::FaultModel;
    use prpart_core::{Objective, Partitioner};
    use prpart_design::corpus;

    fn schemes() -> (Scheme, Scheme) {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let budget = corpus::VIDEO_RECEIVER_BUDGET;
        let by_total = Partitioner::new(budget).partition(&d).unwrap().best.unwrap().scheme;
        let by_worst = Partitioner::new(budget)
            .with_objective(Objective::WorstCase)
            .partition(&d)
            .unwrap()
            .best
            .unwrap()
            .scheme;
        (by_total, by_worst)
    }

    #[test]
    fn violations_are_recorded_with_context() {
        let (scheme, _) = schemes();
        // An impossible deadline: everything after the initial load
        // violates (self-transitions aside).
        let mut m =
            DeadlineMonitor::new(scheme, IcapController::default(), Duration::from_nanos(1));
        let mut env = UniformEnv::new(8, 1);
        let walk = generate_walk(&mut env, 0, 50);
        m.run_walk(&walk).unwrap();
        assert!(m.violation_rate() > 0.9);
        let v = &m.violations()[0];
        assert!(v.took > v.deadline);
        assert_eq!(v.deadline, Duration::from_nanos(1));
        assert_eq!(v.recovery_time, Duration::ZERO, "no faults injected");
        assert!(!v.attributed_to_recovery());
        assert_eq!(m.recovery_attributed_violations(), 0);
    }

    #[test]
    fn generous_deadline_never_violates() {
        let (scheme, _) = schemes();
        let bound = worst_transition_time(&scheme, &IcapModel::virtex5());
        let mut m = DeadlineMonitor::new(scheme, IcapController::default(), bound);
        let mut env = UniformEnv::new(8, 2);
        let walk = generate_walk(&mut env, 0, 200);
        m.run_walk(&walk).unwrap();
        assert_eq!(m.violations().len(), 0, "bound {bound:?} must hold");
        assert!(m.transitions() >= 200);
    }

    #[test]
    fn worst_case_designed_scheme_never_beats_its_bound_and_compares_well() {
        // Deadline = the worst-case-optimised scheme's design bound: that
        // scheme never violates by construction, and the total-time
        // scheme can only do as well or worse under the same deadline.
        let (by_total, by_worst) = schemes();
        let icap = IcapModel::virtex5();
        let deadline = worst_transition_time(&by_worst, &icap);

        let mut env = UniformEnv::new(8, 3);
        let walk = generate_walk(&mut env, 0, 500);

        let mut worst_mon = DeadlineMonitor::new(by_worst, IcapController::default(), deadline);
        worst_mon.run_walk(&walk).unwrap();
        assert_eq!(worst_mon.violations().len(), 0);

        let mut total_mon = DeadlineMonitor::new(by_total, IcapController::default(), deadline);
        total_mon.run_walk(&walk).unwrap();
        assert!(worst_mon.violation_rate() <= total_mon.violation_rate());
    }

    #[test]
    fn retry_caused_misses_are_attributed_to_recovery() {
        // Deadline = the scheme's fault-free worst case: without faults
        // it never violates; under heavy injection every violation is by
        // construction caused by recovery overhead.
        let (scheme, _) = schemes();
        let icap_model = IcapModel::virtex5();
        let deadline = worst_transition_time(&scheme, &icap_model);
        let policy = RecoveryPolicy { max_retries: 10, ..RecoveryPolicy::default() };
        let mut m = DeadlineMonitor::with_policy(
            scheme,
            IcapController::with_faults(icap_model, FaultModel::seeded(0.4, 5)),
            deadline,
            policy,
        );
        let mut env = UniformEnv::new(8, 4);
        let walk = generate_walk(&mut env, 0, 500);
        m.run_walk(&walk).expect("generous retries always recover at rate 0.4");
        assert!(
            !m.violations().is_empty(),
            "rate 0.4 over 500 transitions must push some past the clean worst case"
        );
        for v in m.violations() {
            assert!(v.recovery_time > Duration::ZERO);
            assert!(v.attributed_to_recovery(), "{v:?}");
        }
        assert_eq!(m.recovery_attributed_violations(), m.violations().len());
        assert!(m.manager().telemetry().faults > 0);
    }
}
