//! Reliability telemetry: the counters a fielded adaptive system would
//! export to quantify how often reconfiguration faults occur and how
//! expensive recovering from them is.
//!
//! Every [`crate::ConfigurationManager`] owns one
//! [`ReliabilityTelemetry`]; the Monte-Carlo harness merges the
//! telemetry of all walks into a fleet-level view
//! ([`ReliabilityTelemetry::merge`]).

use std::time::Duration;

/// Cumulative reliability counters of a configuration manager.
///
/// All fields are integers or [`Duration`]s so two telemetry snapshots
/// can be compared exactly — the determinism guard relies on `Eq`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReliabilityTelemetry {
    /// Transitions requested (excluding out-of-range requests).
    pub transitions_attempted: u64,
    /// Transitions that reached the requested configuration.
    pub transitions_completed: u64,
    /// Transitions that fell back to the designated safe configuration.
    pub fallbacks: u64,
    /// Transitions that failed outright (typed error returned).
    pub transitions_failed: u64,
    /// Faults injected at the port, of any kind.
    pub faults: u64,
    /// CRC/readback verification failures among those.
    pub crc_errors: u64,
    /// Transient port stalls among those.
    pub stalls: u64,
    /// Retry attempts issued by the recovery policy.
    pub retries: u64,
    /// Scrub operations performed.
    pub scrubs: u64,
    /// `retry_histogram[k]` = recovery episodes resolved after exactly
    /// `k` retries (index 0: a stall absorbed with no retry).
    pub retry_histogram: Vec<u64>,
    /// Per-region injected fault counts.
    pub region_faults: Vec<u64>,
    /// Load episodes that hit at least one fault but eventually
    /// completed.
    pub recovery_episodes: u64,
    /// Total simulated time spent recovering (failed attempts, backoff,
    /// stalls, scrubs) within successful episodes.
    pub recovery_time: Duration,
    /// Regions blacklisted by degraded mode, in blacklisting order.
    pub blacklisted: Vec<usize>,
}

impl ReliabilityTelemetry {
    /// Creates telemetry for a scheme with `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        ReliabilityTelemetry {
            region_faults: vec![0; num_regions],
            ..ReliabilityTelemetry::default()
        }
    }

    /// Fraction of attempted transitions that reached the requested
    /// configuration (1.0 when nothing has been attempted yet). A safe
    /// configuration fallback keeps the system alive but still counts
    /// against availability.
    pub fn availability(&self) -> f64 {
        if self.transitions_attempted == 0 {
            1.0
        } else {
            self.transitions_completed as f64 / self.transitions_attempted as f64
        }
    }

    /// Mean time to recovery over successful recovery episodes.
    pub fn mean_time_to_recovery(&self) -> Duration {
        if self.recovery_episodes == 0 {
            Duration::ZERO
        } else {
            self.recovery_time / self.recovery_episodes as u32
        }
    }

    /// Records a recovery episode resolved after `retries` retries.
    pub(crate) fn record_episode(&mut self, retries: u32, recovery_time: Duration) {
        let idx = retries as usize;
        if self.retry_histogram.len() <= idx {
            self.retry_histogram.resize(idx + 1, 0);
        }
        self.retry_histogram[idx] += 1;
        self.recovery_episodes += 1;
        self.recovery_time += recovery_time;
    }

    /// Publishes this telemetry onto a shared observability registry
    /// under `runtime.*` metric names, migrating the bespoke struct onto
    /// the workspace-wide substrate: scalar counters map to registry
    /// counters, the retry histogram becomes a fixed-bound
    /// `runtime.recovery.retries_to_resolve` histogram (value =
    /// retries an episode needed), per-region fault counts become
    /// indexed counters, and recovery time / blacklist size become
    /// gauges.
    ///
    /// Counters accumulate across exports, so export a given telemetry
    /// snapshot exactly once per registry (the Monte-Carlo harness
    /// exports only the merged fleet telemetry).
    pub fn export_to(&self, obs: &prpart_obs::ObsHandle) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("runtime.transitions.attempted").add(self.transitions_attempted);
        obs.counter("runtime.transitions.completed").add(self.transitions_completed);
        obs.counter("runtime.transitions.fallbacks").add(self.fallbacks);
        obs.counter("runtime.transitions.failed").add(self.transitions_failed);
        obs.counter("runtime.faults.injected").add(self.faults);
        obs.counter("runtime.faults.crc_errors").add(self.crc_errors);
        obs.counter("runtime.faults.stalls").add(self.stalls);
        obs.counter("runtime.recovery.retries").add(self.retries);
        obs.counter("runtime.recovery.scrubs").add(self.scrubs);
        obs.counter("runtime.recovery.episodes").add(self.recovery_episodes);
        obs.gauge("runtime.recovery.time_nanos").set(self.recovery_time.as_nanos() as i64);
        obs.gauge("runtime.blacklisted.regions").set(self.blacklisted.len() as i64);
        let retries = obs.histogram("runtime.recovery.retries_to_resolve", &[0, 1, 2, 4, 8, 16]);
        for (k, &episodes) in self.retry_histogram.iter().enumerate() {
            retries.record_n(k as u64, episodes);
        }
        for (region, &faults) in self.region_faults.iter().enumerate() {
            obs.counter(&format!("runtime.region_faults.{region}")).add(faults);
        }
    }

    /// Merges another manager's telemetry into this one (Monte-Carlo
    /// aggregation). Histograms and per-region counters are summed
    /// element-wise; blacklists are unioned.
    pub fn merge(&mut self, other: &ReliabilityTelemetry) {
        self.transitions_attempted += other.transitions_attempted;
        self.transitions_completed += other.transitions_completed;
        self.fallbacks += other.fallbacks;
        self.transitions_failed += other.transitions_failed;
        self.faults += other.faults;
        self.crc_errors += other.crc_errors;
        self.stalls += other.stalls;
        self.retries += other.retries;
        self.scrubs += other.scrubs;
        if self.retry_histogram.len() < other.retry_histogram.len() {
            self.retry_histogram.resize(other.retry_histogram.len(), 0);
        }
        for (i, v) in other.retry_histogram.iter().enumerate() {
            self.retry_histogram[i] += v;
        }
        if self.region_faults.len() < other.region_faults.len() {
            self.region_faults.resize(other.region_faults.len(), 0);
        }
        for (i, v) in other.region_faults.iter().enumerate() {
            self.region_faults[i] += v;
        }
        self.recovery_episodes += other.recovery_episodes;
        self.recovery_time += other.recovery_time;
        for &r in &other.blacklisted {
            if !self.blacklisted.contains(&r) {
                self.blacklisted.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_of_fresh_telemetry_is_one() {
        let t = ReliabilityTelemetry::new(3);
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.mean_time_to_recovery(), Duration::ZERO);
        assert_eq!(t.region_faults, vec![0, 0, 0]);
    }

    #[test]
    fn episodes_feed_the_histogram_and_mttr() {
        let mut t = ReliabilityTelemetry::new(1);
        t.record_episode(0, Duration::from_micros(2));
        t.record_episode(2, Duration::from_micros(4));
        t.record_episode(2, Duration::from_micros(6));
        assert_eq!(t.retry_histogram, vec![1, 0, 2]);
        assert_eq!(t.recovery_episodes, 3);
        assert_eq!(t.mean_time_to_recovery(), Duration::from_micros(4));
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ReliabilityTelemetry::new(2);
        a.transitions_attempted = 10;
        a.transitions_completed = 9;
        a.transitions_failed = 1;
        a.region_faults = vec![1, 2];
        a.record_episode(1, Duration::from_micros(10));
        a.blacklisted.push(1);
        let mut b = ReliabilityTelemetry::new(3);
        b.transitions_attempted = 5;
        b.transitions_completed = 5;
        b.region_faults = vec![0, 1, 7];
        b.record_episode(3, Duration::from_micros(2));
        b.blacklisted.push(1);
        b.blacklisted.push(2);
        a.merge(&b);
        assert_eq!(a.transitions_attempted, 15);
        assert_eq!(a.transitions_completed, 14);
        assert_eq!(a.region_faults, vec![1, 3, 7]);
        assert_eq!(a.retry_histogram, vec![0, 1, 0, 1]);
        assert_eq!(a.recovery_episodes, 2);
        assert_eq!(a.recovery_time, Duration::from_micros(12));
        assert_eq!(a.blacklisted, vec![1, 2]);
        let availability = a.availability();
        assert!((availability - 14.0 / 15.0).abs() < 1e-12);
    }
}
