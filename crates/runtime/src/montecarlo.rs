//! Parallel Monte-Carlo over adaptation trajectories.
//!
//! Runs many independent configuration walks against a scheme and
//! aggregates measured reconfiguration cost, to compare schemes under a
//! *dynamic* workload rather than the static all-pairs metric — and to
//! check the cost model's predictions against "hardware" (the simulated
//! manager). Walks run on crossbeam scoped threads; each thread owns its
//! manager, results merge under a parking_lot mutex.
//!
//! With a nonzero [`MonteCarloConfig::fault_rate`] every walk runs
//! against a seeded [`crate::fault::FaultModel`] (walk `i` uses
//! `fault_seed + i`, so reports are deterministic per seed) and the
//! report gains fleet-level reliability figures: availability, retry and
//! fault totals, and merged [`ReliabilityTelemetry`].

use crate::env::{generate_walk, UniformEnv};
use crate::error::RuntimeError;
use crate::fault::FaultModel;
use crate::icap::IcapController;
use crate::manager::{ConfigurationManager, RecoveryPolicy};
use crate::telemetry::ReliabilityTelemetry;
use parking_lot::Mutex;
use prpart_arch::IcapModel;
use prpart_core::Scheme;
use prpart_obs::ObsHandle;
use std::time::Duration;

/// Per-walk measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    /// Transitions executed (excluding the initial load).
    pub transitions: u64,
    /// Frames written.
    pub frames: u64,
    /// Simulated reconfiguration time.
    pub time: Duration,
    /// Largest single transition, in frames.
    pub worst_frames: u64,
    /// Retry attempts spent recovering from injected faults.
    pub retries: u64,
    /// Faults injected during the walk.
    pub faults: u64,
    /// Transitions that failed outright (recovery exhausted, no
    /// fallback available).
    pub failed_transitions: u64,
    /// The portion of `time` spent recovering.
    pub recovery_time: Duration,
}

/// Monte-Carlo parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent walks.
    pub walks: usize,
    /// Transitions per walk.
    pub walk_len: usize,
    /// Base seed; walk `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Per-load fault probability (0.0 = the exact fault-free simulator).
    pub fault_rate: f64,
    /// Base fault seed; walk `i` uses `fault_seed + i`.
    pub fault_seed: u64,
    /// Recovery policy for every walk's manager.
    pub policy: RecoveryPolicy,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            walks: 64,
            walk_len: 256,
            seed: 0x5EED,
            threads: 0,
            fault_rate: 0.0,
            fault_seed: 0xFA17,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// Aggregated report over all walks.
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Per-walk stats, in walk order.
    pub walks: Vec<WalkStats>,
    /// Total frames across walks.
    pub total_frames: u64,
    /// Mean frames per transition.
    pub mean_frames_per_transition: f64,
    /// Largest single transition observed anywhere.
    pub worst_frames: u64,
    /// Total simulated reconfiguration time.
    pub total_time: Duration,
    /// Total retry attempts across walks.
    pub total_retries: u64,
    /// Total injected faults across walks.
    pub total_faults: u64,
    /// Transitions that failed outright across walks.
    pub failed_transitions: u64,
    /// Fleet availability: completed transitions / attempted.
    pub availability: f64,
    /// Mean time to recovery across all recovery episodes.
    pub mean_time_to_recovery: Duration,
    /// Merged reliability telemetry of every walk's manager.
    pub telemetry: ReliabilityTelemetry,
}

/// Runs uniform-random walks against a scheme in parallel and aggregates
/// the measurements.
pub fn run_monte_carlo(scheme: &Scheme, config: MonteCarloConfig) -> MonteCarloReport {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    }
    .min(config.walks.max(1));
    let results: Mutex<Vec<(usize, WalkStats, ReliabilityTelemetry)>> =
        Mutex::new(Vec::with_capacity(config.walks));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    let scope_ok = crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= config.walks {
                    break;
                }
                let (stats, manager) = run_one_walk(scheme, &config, i);
                results.lock().push((i, stats, manager.telemetry().clone()));
            });
        }
    })
    .is_ok();

    let collected = if scope_ok {
        let mut collected = results.into_inner();
        collected.sort_by_key(|(i, _, _)| *i);
        collected.into_iter().map(|(_, s, t)| (s, t)).collect()
    } else {
        // A worker panicked (the in-tree walk code never does, but a
        // future fault model might): the partial results are suspect,
        // so recompute every walk serially. Walk `i` is a pure function
        // of `(scheme, config, i)`, so the report is the one the
        // parallel run would have produced.
        (0..config.walks)
            .map(|i| {
                let (stats, manager) = run_one_walk(scheme, &config, i);
                (stats, manager.telemetry().clone())
            })
            .collect()
    };
    aggregate(scheme, collected)
}

/// [`run_monte_carlo`] plus a [`RuntimeTrace`] for cross-validation
/// against the static transition certifier. Walks run serially (same
/// walk/fault seeds, so the report is identical to the parallel run);
/// the trace keeps per-ordered-pair maxima and every distinct degraded
/// (blacklist) state any walk ended in.
pub fn run_monte_carlo_traced(
    scheme: &Scheme,
    config: MonteCarloConfig,
) -> (MonteCarloReport, RuntimeTrace) {
    let mut collected = Vec::with_capacity(config.walks);
    let mut trace = RuntimeTrace::default();
    for i in 0..config.walks {
        let (stats, manager) = run_one_walk(scheme, &config, i);
        trace.absorb(&manager);
        collected.push((stats, manager.telemetry().clone()));
    }
    (aggregate(scheme, collected), trace)
}

fn aggregate(
    scheme: &Scheme,
    collected: Vec<(WalkStats, ReliabilityTelemetry)>,
) -> MonteCarloReport {
    let mut telemetry = ReliabilityTelemetry::new(scheme.regions.len());
    let mut walks = Vec::with_capacity(collected.len());
    for (s, t) in collected {
        telemetry.merge(&t);
        walks.push(s);
    }
    let total_frames: u64 = walks.iter().map(|w| w.frames).sum();
    let total_transitions: u64 = walks.iter().map(|w| w.transitions).sum();
    let worst_frames = walks.iter().map(|w| w.worst_frames).max().unwrap_or(0);
    let total_time = walks.iter().map(|w| w.time).sum();
    let total_retries = walks.iter().map(|w| w.retries).sum();
    let total_faults = walks.iter().map(|w| w.faults).sum();
    let failed_transitions = walks.iter().map(|w| w.failed_transitions).sum();
    MonteCarloReport {
        total_frames,
        mean_frames_per_transition: if total_transitions == 0 {
            0.0
        } else {
            total_frames as f64 / total_transitions as f64
        },
        worst_frames,
        total_time,
        total_retries,
        total_faults,
        failed_transitions,
        availability: telemetry.availability(),
        mean_time_to_recovery: telemetry.mean_time_to_recovery(),
        telemetry,
        walks,
    }
}

/// [`run_monte_carlo`] under an observability handle: the whole
/// simulation runs inside a `simulate` span, fleet totals land on the
/// registry as `runtime.walks`/`runtime.frames` counters, and the
/// merged [`ReliabilityTelemetry`] is exported through
/// [`ReliabilityTelemetry::export_to`]. With a disabled handle this is
/// exactly [`run_monte_carlo`].
pub fn run_monte_carlo_observed(
    scheme: &Scheme,
    config: MonteCarloConfig,
    obs: &ObsHandle,
) -> MonteCarloReport {
    let report = {
        let _span = obs.span("simulate");
        run_monte_carlo(scheme, config)
    };
    obs.counter("runtime.walks").add(report.walks.len() as u64);
    obs.counter("runtime.frames").add(report.total_frames);
    report.telemetry.export_to(obs);
    report
}

/// One runtime-observed ordered transition, folded to its maxima — the
/// exact shape the static certifier's per-edge bound must dominate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedTransition {
    /// Source configuration.
    pub from: usize,
    /// Configuration actually reached (after any fallback).
    pub to: usize,
    /// Times this ordered pair was executed.
    pub occurrences: u64,
    /// Largest frame count observed for the pair.
    pub max_frames: u64,
    /// Largest fault-free time observed for the pair
    /// ([`crate::manager::TransitionRecord::clean_time`]).
    pub max_clean_time: Duration,
}

/// A degraded (blacklist) state some walk ended in, with the
/// availability the runtime computed under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedState {
    /// Blacklisted regions, ascending.
    pub blacklist: Vec<usize>,
    /// Configurations the manager still considered servable.
    pub available: Vec<usize>,
}

/// Everything the runtime observed that the static transition
/// certificate makes claims about. Built by [`run_monte_carlo_traced`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeTrace {
    /// Per-ordered-pair maxima over every measured hop (the unmeasured
    /// power-up load is excluded, matching the walk stats).
    pub transitions: Vec<ObservedTransition>,
    /// Every distinct blacklist state reached, with its availability.
    pub degraded_states: Vec<DegradedState>,
}

impl RuntimeTrace {
    fn absorb(&mut self, manager: &ConfigurationManager) {
        for rec in manager.log() {
            let Some(from) = rec.from else { continue };
            let clean = rec.clean_time();
            match self.transitions.iter_mut().find(|t| t.from == from && t.to == rec.to) {
                Some(t) => {
                    t.occurrences += 1;
                    t.max_frames = t.max_frames.max(rec.frames);
                    t.max_clean_time = t.max_clean_time.max(clean);
                }
                None => self.transitions.push(ObservedTransition {
                    from,
                    to: rec.to,
                    occurrences: 1,
                    max_frames: rec.frames,
                    max_clean_time: clean,
                }),
            }
        }
        if manager.is_degraded() {
            let state = DegradedState {
                blacklist: manager.blacklisted_regions(),
                available: manager.available_configurations(),
            };
            if !self.degraded_states.contains(&state) {
                self.degraded_states.push(state);
            }
        }
    }
}

fn run_one_walk(
    scheme: &Scheme,
    config: &MonteCarloConfig,
    index: usize,
) -> (WalkStats, ConfigurationManager) {
    let seed = config.seed + index as u64;
    let mut env = UniformEnv::new(scheme.num_configurations, seed);
    let walk =
        generate_walk(&mut env, (seed as usize) % scheme.num_configurations, config.walk_len);
    let faults = if config.fault_rate > 0.0 {
        FaultModel::seeded(config.fault_rate, config.fault_seed + index as u64)
    } else {
        FaultModel::none()
    };
    let icap = IcapController::with_faults(IcapModel::virtex5(), faults);
    let mut manager = ConfigurationManager::with_policy(scheme.clone(), icap, config.policy);
    let mut stats = WalkStats {
        transitions: 0,
        frames: 0,
        time: Duration::ZERO,
        worst_frames: 0,
        retries: 0,
        faults: 0,
        failed_transitions: 0,
        recovery_time: Duration::ZERO,
    };
    // Initial load: not measured (power-up is a full-bitstream load),
    // but a failure here still charges its recovery time.
    apply(&mut stats, manager.transition(walk[0]), false);
    for &c in &walk[1..] {
        apply(&mut stats, manager.transition(c), true);
        stats.transitions += 1;
    }
    (stats, manager)
}

/// Folds one transition outcome into the walk stats. Failed transitions
/// still cost their recovery time at the port; blacklisted refusals are
/// free.
fn apply(
    stats: &mut WalkStats,
    outcome: Result<&crate::manager::TransitionRecord, RuntimeError>,
    measured: bool,
) {
    match outcome {
        Ok(rec) => {
            stats.retries += rec.retries as u64;
            stats.faults += rec.faults as u64;
            if measured {
                stats.frames += rec.frames;
                stats.time += rec.time;
                stats.recovery_time += rec.recovery_time;
                stats.worst_frames = stats.worst_frames.max(rec.frames);
            }
        }
        Err(RuntimeError::RegionFault { attempts, elapsed, .. }) => {
            stats.failed_transitions += 1;
            stats.retries += attempts.saturating_sub(1) as u64;
            stats.faults += attempts as u64;
            if measured {
                stats.time += elapsed;
                stats.recovery_time += elapsed;
            }
        }
        Err(_) => {
            stats.failed_transitions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_core::{baselines, Partitioner, TransitionSemantics};
    use prpart_design::{corpus, ConnectivityMatrix};

    fn schemes() -> (Scheme, Scheme) {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let matrix = ConnectivityMatrix::from_design(&d);
        let proposed = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
            .partition(&d)
            .unwrap()
            .best
            .unwrap()
            .scheme;
        let single = baselines::single_region(&d, &matrix);
        (proposed, single)
    }

    #[test]
    fn deterministic_given_seed() {
        let (proposed, _) = schemes();
        let cfg =
            MonteCarloConfig { walks: 8, walk_len: 50, seed: 3, threads: 2, ..Default::default() };
        let a = run_monte_carlo(&proposed, cfg);
        let b = run_monte_carlo(&proposed, cfg);
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.total_frames, b.total_frames);
        assert_eq!(a.telemetry, b.telemetry);
    }

    #[test]
    fn proposed_beats_single_region_under_random_walks() {
        // The whole point of the paper: under unknown transition orders,
        // the proposed scheme reconfigures fewer frames than the
        // single-region scheme.
        let (proposed, single) = schemes();
        let cfg = MonteCarloConfig {
            walks: 16,
            walk_len: 100,
            seed: 11,
            threads: 4,
            ..Default::default()
        };
        let p = run_monte_carlo(&proposed, cfg);
        let s = run_monte_carlo(&single, cfg);
        assert!(
            p.total_frames < s.total_frames,
            "proposed {} !< single {}",
            p.total_frames,
            s.total_frames
        );
        assert!(p.mean_frames_per_transition < s.mean_frames_per_transition);
    }

    #[test]
    fn measured_mean_tracks_model_mean() {
        // Uniform walks visit all transitions; the measured mean per
        // transition should be close to the model's average pair cost
        // (exact for designs with no don't-care regions).
        let (proposed, _) = schemes();
        let c = proposed.num_configurations as u64;
        let model_mean = proposed.total_reconfig_frames(TransitionSemantics::Optimistic) as f64
            / (c * (c - 1) / 2) as f64;
        let cfg = MonteCarloConfig {
            walks: 32,
            walk_len: 200,
            seed: 1,
            threads: 0,
            ..Default::default()
        };
        let report = run_monte_carlo(&proposed, cfg);
        let ratio = report.mean_frames_per_transition / model_mean;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "measured/model = {ratio} (measured {}, model {model_mean})",
            report.mean_frames_per_transition
        );
        // Worst observed single hop never exceeds the model's worst case.
        assert!(
            report.worst_frames <= proposed.worst_reconfig_frames(TransitionSemantics::Optimistic)
        );
    }

    #[test]
    fn zero_walks_yield_an_empty_report() {
        let (proposed, _) = schemes();
        let cfg =
            MonteCarloConfig { walks: 0, walk_len: 10, seed: 1, threads: 2, ..Default::default() };
        let r = run_monte_carlo(&proposed, cfg);
        assert!(r.walks.is_empty());
        assert_eq!(r.total_frames, 0);
        assert_eq!(r.mean_frames_per_transition, 0.0);
        assert_eq!(r.worst_frames, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.total_faults, 0);
    }

    #[test]
    fn report_totals_are_consistent() {
        let (proposed, _) = schemes();
        let cfg =
            MonteCarloConfig { walks: 5, walk_len: 20, seed: 2, threads: 1, ..Default::default() };
        let r = run_monte_carlo(&proposed, cfg);
        assert_eq!(r.walks.len(), 5);
        assert_eq!(r.total_frames, r.walks.iter().map(|w| w.frames).sum::<u64>());
        assert_eq!(r.total_time, r.walks.iter().map(|w| w.time).sum::<Duration>());
        assert!(r.walks.iter().all(|w| w.transitions == 20));
    }

    #[test]
    fn zero_fault_rate_is_byte_identical_to_the_fault_free_simulator() {
        // The whole zero-fault path must not depend on fault_seed or the
        // recovery policy: identical walks, totals, and telemetry.
        let (proposed, _) = schemes();
        let a = run_monte_carlo(
            &proposed,
            MonteCarloConfig { walks: 6, walk_len: 40, seed: 7, ..Default::default() },
        );
        let b = run_monte_carlo(
            &proposed,
            MonteCarloConfig {
                walks: 6,
                walk_len: 40,
                seed: 7,
                fault_rate: 0.0,
                fault_seed: 0xDEAD_BEEF,
                policy: RecoveryPolicy { max_retries: 9, ..RecoveryPolicy::default() },
                ..Default::default()
            },
        );
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.total_faults, 0);
        assert_eq!(a.total_retries, 0);
        assert_eq!(a.availability, 1.0);
        assert_eq!(a.mean_time_to_recovery, Duration::ZERO);
    }

    #[test]
    fn faults_cost_time_and_are_reproducible() {
        let (proposed, _) = schemes();
        let cfg = MonteCarloConfig {
            walks: 8,
            walk_len: 50,
            seed: 3,
            fault_rate: 0.2,
            fault_seed: 42,
            ..Default::default()
        };
        let faulty = run_monte_carlo(&proposed, cfg);
        let again = run_monte_carlo(&proposed, cfg);
        assert_eq!(faulty.walks, again.walks, "same fault seed, same walks");
        assert_eq!(faulty.telemetry, again.telemetry);
        assert!(faulty.total_faults > 0, "rate 0.2 over 400 transitions must fault");
        assert!(faulty.total_retries > 0);
        assert!(faulty.telemetry.recovery_episodes > 0);
        assert!(faulty.mean_time_to_recovery > Duration::ZERO);

        let clean = run_monte_carlo(&proposed, MonteCarloConfig { fault_rate: 0.0, ..cfg });
        assert!(
            faulty.total_time > clean.total_time,
            "recovery overhead must show up in total time"
        );

        let other_seed = run_monte_carlo(&proposed, MonteCarloConfig { fault_seed: 43, ..cfg });
        assert_ne!(faulty.telemetry, other_seed.telemetry, "different fault seeds must diverge");
    }
}
