//! Parallel Monte-Carlo over adaptation trajectories.
//!
//! Runs many independent configuration walks against a scheme and
//! aggregates measured reconfiguration cost, to compare schemes under a
//! *dynamic* workload rather than the static all-pairs metric — and to
//! check the cost model's predictions against "hardware" (the simulated
//! manager). Walks run on crossbeam scoped threads; each thread owns its
//! manager, results merge under a parking_lot mutex.

use crate::env::{generate_walk, UniformEnv};
use crate::icap::IcapController;
use crate::manager::ConfigurationManager;
use parking_lot::Mutex;
use prpart_core::Scheme;
use std::time::Duration;

/// Per-walk measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    /// Transitions executed (excluding the initial load).
    pub transitions: u64,
    /// Frames written.
    pub frames: u64,
    /// Simulated reconfiguration time.
    pub time: Duration,
    /// Largest single transition, in frames.
    pub worst_frames: u64,
}

/// Monte-Carlo parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent walks.
    pub walks: usize,
    /// Transitions per walk.
    pub walk_len: usize,
    /// Base seed; walk `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { walks: 64, walk_len: 256, seed: 0x5EED, threads: 0 }
    }
}

/// Aggregated report over all walks.
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Per-walk stats, in walk order.
    pub walks: Vec<WalkStats>,
    /// Total frames across walks.
    pub total_frames: u64,
    /// Mean frames per transition.
    pub mean_frames_per_transition: f64,
    /// Largest single transition observed anywhere.
    pub worst_frames: u64,
    /// Total simulated reconfiguration time.
    pub total_time: Duration,
}

/// Runs uniform-random walks against a scheme in parallel and aggregates
/// the measurements.
pub fn run_monte_carlo(scheme: &Scheme, config: MonteCarloConfig) -> MonteCarloReport {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    }
    .min(config.walks.max(1));
    let results: Mutex<Vec<(usize, WalkStats)>> =
        Mutex::new(Vec::with_capacity(config.walks));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= config.walks {
                    break;
                }
                let stats = run_one_walk(scheme, config.seed + i as u64, config.walk_len);
                results.lock().push((i, stats));
            });
        }
    })
    .expect("monte carlo workers never panic");

    let mut walks = results.into_inner();
    walks.sort_by_key(|(i, _)| *i);
    let walks: Vec<WalkStats> = walks.into_iter().map(|(_, s)| s).collect();
    let total_frames: u64 = walks.iter().map(|w| w.frames).sum();
    let total_transitions: u64 = walks.iter().map(|w| w.transitions).sum();
    let worst_frames = walks.iter().map(|w| w.worst_frames).max().unwrap_or(0);
    let total_time = walks.iter().map(|w| w.time).sum();
    MonteCarloReport {
        walks,
        total_frames,
        mean_frames_per_transition: if total_transitions == 0 {
            0.0
        } else {
            total_frames as f64 / total_transitions as f64
        },
        worst_frames,
        total_time,
    }
}

fn run_one_walk(scheme: &Scheme, seed: u64, len: usize) -> WalkStats {
    let mut env = UniformEnv::new(scheme.num_configurations, seed);
    let walk = generate_walk(&mut env, (seed as usize) % scheme.num_configurations, len);
    let mut manager = ConfigurationManager::new(scheme.clone(), IcapController::default());
    manager.transition(walk[0]);
    let mut frames = 0u64;
    let mut time = Duration::ZERO;
    let mut worst = 0u64;
    let mut transitions = 0u64;
    for &c in &walk[1..] {
        let rec = manager.transition(c);
        frames += rec.frames;
        time += rec.time;
        worst = worst.max(rec.frames);
        transitions += 1;
    }
    WalkStats { transitions, frames, time, worst_frames: worst }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prpart_core::{baselines, Partitioner, TransitionSemantics};
    use prpart_design::{corpus, ConnectivityMatrix};

    fn schemes() -> (Scheme, Scheme) {
        let d = corpus::video_receiver(corpus::VideoConfigSet::Original);
        let matrix = ConnectivityMatrix::from_design(&d);
        let proposed = Partitioner::new(corpus::VIDEO_RECEIVER_BUDGET)
            .partition(&d)
            .unwrap()
            .best
            .unwrap()
            .scheme;
        let single = baselines::single_region(&d, &matrix);
        (proposed, single)
    }

    #[test]
    fn deterministic_given_seed() {
        let (proposed, _) = schemes();
        let cfg = MonteCarloConfig { walks: 8, walk_len: 50, seed: 3, threads: 2 };
        let a = run_monte_carlo(&proposed, cfg);
        let b = run_monte_carlo(&proposed, cfg);
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.total_frames, b.total_frames);
    }

    #[test]
    fn proposed_beats_single_region_under_random_walks() {
        // The whole point of the paper: under unknown transition orders,
        // the proposed scheme reconfigures fewer frames than the
        // single-region scheme.
        let (proposed, single) = schemes();
        let cfg = MonteCarloConfig { walks: 16, walk_len: 100, seed: 11, threads: 4 };
        let p = run_monte_carlo(&proposed, cfg);
        let s = run_monte_carlo(&single, cfg);
        assert!(
            p.total_frames < s.total_frames,
            "proposed {} !< single {}",
            p.total_frames,
            s.total_frames
        );
        assert!(p.mean_frames_per_transition < s.mean_frames_per_transition);
    }

    #[test]
    fn measured_mean_tracks_model_mean() {
        // Uniform walks visit all transitions; the measured mean per
        // transition should be close to the model's average pair cost
        // (exact for designs with no don't-care regions).
        let (proposed, _) = schemes();
        let c = proposed.num_configurations as u64;
        let model_mean = proposed.total_reconfig_frames(TransitionSemantics::Optimistic) as f64
            / (c * (c - 1) / 2) as f64;
        let cfg = MonteCarloConfig { walks: 32, walk_len: 200, seed: 1, threads: 0 };
        let report = run_monte_carlo(&proposed, cfg);
        let ratio = report.mean_frames_per_transition / model_mean;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "measured/model = {ratio} (measured {}, model {model_mean})",
            report.mean_frames_per_transition
        );
        // Worst observed single hop never exceeds the model's worst case.
        assert!(
            report.worst_frames <= proposed.worst_reconfig_frames(TransitionSemantics::Optimistic)
        );
    }

    #[test]
    fn zero_walks_yield_an_empty_report() {
        let (proposed, _) = schemes();
        let cfg = MonteCarloConfig { walks: 0, walk_len: 10, seed: 1, threads: 2 };
        let r = run_monte_carlo(&proposed, cfg);
        assert!(r.walks.is_empty());
        assert_eq!(r.total_frames, 0);
        assert_eq!(r.mean_frames_per_transition, 0.0);
        assert_eq!(r.worst_frames, 0);
    }

    #[test]
    fn report_totals_are_consistent() {
        let (proposed, _) = schemes();
        let cfg = MonteCarloConfig { walks: 5, walk_len: 20, seed: 2, threads: 1 };
        let r = run_monte_carlo(&proposed, cfg);
        assert_eq!(r.walks.len(), 5);
        assert_eq!(r.total_frames, r.walks.iter().map(|w| w.frames).sum::<u64>());
        assert_eq!(r.total_time, r.walks.iter().map(|w| w.time).sum::<Duration>());
        assert!(r.walks.iter().all(|w| w.transitions == 20));
    }
}
