//! Workload profiling: estimating transition weights from observed
//! adaptation traces.
//!
//! The bridge from the runtime back into the partitioner's future-work
//! extension: run (or log) the adaptive system, count which configuration
//! switches actually happen, and hand the statistics to
//! [`prpart_core::Partitioner::with_transition_weights`] so the next
//! partitioning minimises *expected* reconfiguration cost under the real
//! workload rather than the uniform all-pairs assumption.

use crate::env::Environment;
use prpart_core::TransitionWeights;

/// Accumulates transition counts from configuration walks.
#[derive(Debug, Clone)]
pub struct TransitionProfile {
    n: usize,
    counts: Vec<Vec<u64>>,
    transitions: u64,
}

impl TransitionProfile {
    /// Creates an empty profile over `n` configurations.
    pub fn new(n: usize) -> Self {
        TransitionProfile { n, counts: vec![vec![0; n]; n], transitions: 0 }
    }

    /// Records one walk (a sequence of configurations; consecutive
    /// repeats are ignored — they cause no reconfiguration).
    pub fn record_walk(&mut self, walk: &[usize]) {
        for w in walk.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(a < self.n && b < self.n, "configuration out of range");
            if a != b {
                self.counts[a][b] += 1;
                self.transitions += 1;
            }
        }
    }

    /// Records `walks` walks of `len` transitions each, drawn from an
    /// environment starting at configuration `start`.
    pub fn record_from_env(
        &mut self,
        env: &mut dyn Environment,
        start: usize,
        walks: usize,
        len: usize,
    ) {
        for _ in 0..walks {
            let walk = crate::env::generate_walk(env, start, len);
            self.record_walk(&walk);
        }
    }

    /// Total recorded transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Directed count of i → j transitions.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i][j]
    }

    /// Converts to symmetric transition weights, normalised so the
    /// weighted objective is magnitude-comparable with the unweighted
    /// Eq. 10 total.
    pub fn to_weights(&self) -> TransitionWeights {
        TransitionWeights::from_observed_counts(&self.counts).normalised()
    }
}

/// One-shot helper: profile an environment and return normalised weights.
pub fn estimate_weights(
    env: &mut dyn Environment,
    num_configurations: usize,
    walks: usize,
    len: usize,
) -> TransitionWeights {
    let mut profile = TransitionProfile::new(num_configurations);
    profile.record_from_env(env, 0, walks, len);
    profile.to_weights()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MarkovEnv;

    #[test]
    fn records_and_symmetrises() {
        let mut p = TransitionProfile::new(3);
        p.record_walk(&[0, 1, 1, 2, 0]);
        assert_eq!(p.transitions(), 3); // 0→1, 1→2, 2→0 (repeat ignored)
        assert_eq!(p.count(0, 1), 1);
        assert_eq!(p.count(1, 1), 0);
        let w = p.to_weights();
        assert!(w.get(0, 1) > 0.0);
        assert_eq!(w.get(0, 1), w.get(1, 0));
    }

    #[test]
    fn markov_profile_recovers_the_chain_shape() {
        // A chain that almost always cycles 0→1→2→0: the profiled weights
        // must put most mass on those pairs.
        let mut env = MarkovEnv::new(
            vec![vec![0.0, 100.0, 1.0], vec![1.0, 0.0, 100.0], vec![100.0, 1.0, 0.0]],
            42,
        );
        let w = estimate_weights(&mut env, 3, 8, 200);
        let cycle = w.get(0, 1) + w.get(1, 2) + w.get(0, 2);
        assert!(w.get(0, 1) > w.total_mass() / 10.0);
        assert!((cycle - w.total_mass()).abs() < 1e-9, "all mass on the three pairs");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_walk_panics() {
        TransitionProfile::new(2).record_walk(&[0, 5]);
    }
}
