//! Environment models driving adaptation.
//!
//! Adaptive systems switch configurations "depending upon the adaptation
//! conditions set by the application" (paper §III-A): the sequence is
//! unknown at design time. These models generate such sequences for the
//! runtime simulator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A source of configuration switches.
pub trait Environment {
    /// The next configuration, given the current one.
    fn next(&mut self, current: usize) -> usize;
}

/// Uniform random switching over all configurations (never repeats the
/// current one when more than one exists) — the assumption behind the
/// paper's total-reconfiguration-time metric, which weighs all pairs
/// equally.
#[derive(Debug)]
pub struct UniformEnv {
    num_configs: usize,
    rng: StdRng,
}

impl UniformEnv {
    /// Creates a uniform environment over `num_configs` configurations.
    pub fn new(num_configs: usize, seed: u64) -> Self {
        assert!(num_configs > 0);
        UniformEnv { num_configs, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Environment for UniformEnv {
    fn next(&mut self, current: usize) -> usize {
        if self.num_configs == 1 {
            return 0;
        }
        // Draw from the other configurations uniformly.
        let pick = self.rng.random_range(0..self.num_configs - 1);
        if pick >= current {
            pick + 1
        } else {
            pick
        }
    }
}

/// A first-order Markov chain over configurations: the paper's
/// future-work direction of exploiting "knowledge of the specific
/// transition probabilities".
#[derive(Debug)]
pub struct MarkovEnv {
    /// Row-stochastic transition matrix (rows need not be normalised;
    /// they are treated as weights).
    weights: Vec<Vec<f64>>,
    rng: StdRng,
}

impl MarkovEnv {
    /// Creates a Markov environment from a weight matrix
    /// (`weights[i][j]` = relative probability of switching i → j).
    ///
    /// # Panics
    /// Panics if the matrix is not square, or a row has no positive
    /// weight.
    pub fn new(weights: Vec<Vec<f64>>, seed: u64) -> Self {
        let n = weights.len();
        for (i, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            assert!(row.iter().any(|&w| w > 0.0), "row {i} has no positive weight");
            assert!(row.iter().all(|&w| w >= 0.0), "negative weight in row {i}");
        }
        MarkovEnv { weights, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Environment for MarkovEnv {
    fn next(&mut self, current: usize) -> usize {
        let row = &self.weights[current];
        let total: f64 = row.iter().sum();
        let mut draw = self.rng.random_range(0.0..total);
        for (j, &w) in row.iter().enumerate() {
            if draw < w {
                return j;
            }
            draw -= w;
        }
        row.len() - 1
    }
}

/// A cognitive-radio-style environment: a bounded random walk over SNR;
/// thresholds map the SNR to a configuration index (configuration 0 is
/// assumed most robust / lowest rate, the last the most aggressive).
/// This mirrors the paper's motivating example of a receiver adapting
/// "to channel conditions and user requirements at runtime".
#[derive(Debug)]
pub struct CognitiveRadioEnv {
    snr_db: f64,
    step_db: f64,
    min_db: f64,
    max_db: f64,
    /// Ascending SNR thresholds; configuration = #thresholds below SNR.
    thresholds: Vec<f64>,
    rng: StdRng,
}

impl CognitiveRadioEnv {
    /// Creates the environment with SNR thresholds (ascending, one fewer
    /// than the number of configurations).
    pub fn new(thresholds: Vec<f64>, seed: u64) -> Self {
        assert!(!thresholds.is_empty(), "need at least one threshold");
        assert!(thresholds.windows(2).all(|w| w[0] < w[1]), "thresholds must ascend");
        let mid = (thresholds[0] + thresholds[thresholds.len() - 1]) / 2.0;
        CognitiveRadioEnv {
            snr_db: mid,
            step_db: 1.5,
            min_db: thresholds[0] - 6.0,
            max_db: thresholds[thresholds.len() - 1] + 6.0,
            thresholds,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current simulated SNR in dB.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    fn config_for_snr(&self) -> usize {
        self.thresholds.iter().filter(|&&t| self.snr_db >= t).count()
    }
}

impl Environment for CognitiveRadioEnv {
    fn next(&mut self, _current: usize) -> usize {
        let delta = self.rng.random_range(-self.step_db..=self.step_db);
        self.snr_db = (self.snr_db + delta).clamp(self.min_db, self.max_db);
        self.config_for_snr()
    }
}

/// Generates a configuration walk of `len` steps starting from
/// `start`, consecutive duplicates removed (a re-selected configuration
/// causes no reconfiguration anyway, but compacting keeps walk lengths
/// meaningful).
pub fn generate_walk(env: &mut dyn Environment, start: usize, len: usize) -> Vec<usize> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut current = start;
    while walk.len() <= len {
        let next = env.next(current);
        if next != current {
            walk.push(next);
            current = next;
        } else if walk.len() > 1 {
            // Avoid spinning forever on sticky environments: accept the
            // repeat silently (no reconfiguration will occur).
            walk.push(next);
        } else {
            walk.push(next);
        }
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_repeats_current() {
        let mut env = UniformEnv::new(5, 1);
        let mut c = 0;
        for _ in 0..200 {
            let n = env.next(c);
            assert_ne!(n, c);
            assert!(n < 5);
            c = n;
        }
    }

    #[test]
    fn uniform_single_config_is_stuck() {
        let mut env = UniformEnv::new(1, 1);
        assert_eq!(env.next(0), 0);
    }

    #[test]
    fn markov_follows_weights() {
        // Deterministic chain 0 → 1 → 2 → 0.
        let mut env =
            MarkovEnv::new(vec![vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0]], 7);
        assert_eq!(env.next(0), 1);
        assert_eq!(env.next(1), 2);
        assert_eq!(env.next(2), 0);
    }

    #[test]
    #[should_panic(expected = "no positive weight")]
    fn markov_rejects_dead_rows() {
        MarkovEnv::new(vec![vec![0.0]], 1);
    }

    #[test]
    fn radio_tracks_snr() {
        let mut env = CognitiveRadioEnv::new(vec![5.0, 10.0, 15.0], 3);
        for _ in 0..500 {
            let c = env.next(0);
            assert!(c <= 3);
            // Configuration is consistent with the SNR.
            let expect = [5.0, 10.0, 15.0].iter().filter(|&&t| env.snr_db() >= t).count();
            assert_eq!(c, expect);
        }
    }

    #[test]
    fn walks_have_requested_length() {
        let mut env = UniformEnv::new(4, 9);
        let walk = generate_walk(&mut env, 2, 50);
        assert_eq!(walk[0], 2);
        assert_eq!(walk.len(), 51);
        assert!(walk.iter().all(|&c| c < 4));
    }

    #[test]
    fn environments_are_deterministic_per_seed() {
        let mut a = UniformEnv::new(6, 42);
        let mut b = UniformEnv::new(6, 42);
        let wa = generate_walk(&mut a, 0, 30);
        let wb = generate_walk(&mut b, 0, 30);
        assert_eq!(wa, wb);
    }
}
