//! # prpart-arch — FPGA architecture model
//!
//! This crate models the parts of the Xilinx Virtex-5 architecture that the
//! partitioning algorithm of Vipin & Fahmy (IPDPSW 2013) depends on:
//!
//! * **Resources** ([`Resources`]) — counts of the three reconfigurable
//!   primitive kinds: CLBs, BlockRAMs and DSP slices.
//! * **Tiles** ([`TileCounts`]) — the smallest reconfigurable units. One CLB
//!   tile holds 20 CLBs, one DSP tile holds 8 DSP slices and one BRAM tile
//!   holds 4 BlockRAMs (paper §IV-B).
//! * **Frames** — the smallest addressable unit of configuration memory. A
//!   CLB tile spans 36 frames, a DSP tile 28 and a BRAM tile 30; one frame
//!   is 41 words = 1312 bits (paper Eq. 1/6). Reconfiguration time is
//!   proportional to the number of frames written (paper Eq. 9).
//! * **Devices** ([`Device`], [`DeviceLibrary`]) — the Virtex-5 parts used on
//!   the axes of the paper's Figs. 7 and 8, with capacities and a simple
//!   row/column geometry used by the floorplanner.
//! * **Frame addresses** ([`far::FrameAddress`]) — the FAR register
//!   layout and rectangle → frame-address mapping used by bitstream
//!   generation.
//! * **ICAP timing** ([`icap::IcapModel`]) — converts frame counts into
//!   wall-clock reconfiguration time through the internal configuration
//!   access port, so the runtime simulator can report microseconds rather
//!   than raw frames.
//!
//! The crate is dependency-light and fully deterministic; all higher layers
//! (design model, partitioner, floorplanner, flow, runtime) build on it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod far;
pub mod geometry;
pub mod icap;
pub mod resources;
pub mod tile;

pub use device::{Device, DeviceFamily, DeviceLibrary};
pub use far::{frames_for_rect, FrameAddress};
pub use geometry::{BlockKind, DeviceGeometry};
pub use icap::IcapModel;
pub use resources::{ResourceKind, Resources};
pub use tile::{frames_for, TileCounts};
