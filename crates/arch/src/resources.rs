//! Resource vectors over the three reconfigurable primitive kinds.
//!
//! The paper (§IV-B) computes all areas over a three-component resource
//! vector: CLBs, BlockRAMs and DSP slices. [`Resources`] is that vector,
//! with the element-wise arithmetic the algorithm needs:
//!
//! * **sum** — concurrent logic (modes loaded together in one wrapper),
//! * **element-wise max** — mutually exclusive logic sharing one region
//!   (paper Eq. 2),
//! * **fits-in comparison** — feasibility against a device or budget.
//!
//! A note on units: the paper conflates Virtex-5 *slices* and *CLBs* (its
//! Table II is in slices while budgets are quoted in "CLBs"). We follow the
//! paper and use a single logic-cell unit called "CLB" throughout, with the
//! 20-per-tile quantisation of §IV-B.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Index, Mul, Sub};

/// The three kinds of reconfigurable primitive resources on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Configurable logic block (the paper's generic logic-cell unit).
    Clb,
    /// 36 Kbit BlockRAM.
    Bram,
    /// DSP48E slice.
    Dsp,
}

impl ResourceKind {
    /// All resource kinds, in the canonical (CLB, BRAM, DSP) order used
    /// throughout the paper's equations.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Clb, ResourceKind::Bram, ResourceKind::Dsp];

    /// Short lowercase name used in XML attributes and reports.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Clb => "clb",
            ResourceKind::Bram => "bram",
            ResourceKind::Dsp => "dsp",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A resource requirement or capacity: counts of CLBs, BlockRAMs and DSP
/// slices.
///
/// `Resources` is a plain value type; all operations are element-wise and
/// cheap. Ordering is *not* derived because resource vectors are only
/// partially ordered — use [`Resources::fits_in`] for feasibility checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Configurable logic blocks.
    pub clb: u32,
    /// BlockRAMs.
    pub bram: u32,
    /// DSP slices.
    pub dsp: u32,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { clb: 0, bram: 0, dsp: 0 };

    /// Creates a resource vector from (CLB, BRAM, DSP) counts.
    pub const fn new(clb: u32, bram: u32, dsp: u32) -> Self {
        Resources { clb, bram, dsp }
    }

    /// A vector with only CLBs.
    pub const fn clbs(clb: u32) -> Self {
        Resources { clb, bram: 0, dsp: 0 }
    }

    /// Returns the count for one resource kind.
    pub fn get(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Clb => self.clb,
            ResourceKind::Bram => self.bram,
            ResourceKind::Dsp => self.dsp,
        }
    }

    /// Sets the count for one resource kind.
    pub fn set(&mut self, kind: ResourceKind, value: u32) {
        match kind {
            ResourceKind::Clb => self.clb = value,
            ResourceKind::Bram => self.bram = value,
            ResourceKind::Dsp => self.dsp = value,
        }
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }

    /// Element-wise maximum — the area of a region shared by mutually
    /// exclusive partitions (paper Eq. 2, applied per resource kind as in
    /// Eqs. 3–5).
    pub fn max(self, other: Resources) -> Resources {
        Resources {
            clb: self.clb.max(other.clb),
            bram: self.bram.max(other.bram),
            dsp: self.dsp.max(other.dsp),
        }
    }

    /// Element-wise minimum.
    pub fn min(self, other: Resources) -> Resources {
        Resources {
            clb: self.clb.min(other.clb),
            bram: self.bram.min(other.bram),
            dsp: self.dsp.min(other.dsp),
        }
    }

    /// Saturating element-wise subtraction.
    pub fn saturating_sub(self, other: Resources) -> Resources {
        Resources {
            clb: self.clb.saturating_sub(other.clb),
            bram: self.bram.saturating_sub(other.bram),
            dsp: self.dsp.saturating_sub(other.dsp),
        }
    }

    /// True if `self` fits within `capacity` in every component — the
    /// feasibility test of the paper's flow chart ("min. area < FPGA
    /// resources?", Fig. 6).
    pub fn fits_in(&self, capacity: &Resources) -> bool {
        self.clb <= capacity.clb && self.bram <= capacity.bram && self.dsp <= capacity.dsp
    }

    /// Iterator over `(kind, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u32)> + '_ {
        ResourceKind::ALL.into_iter().map(move |k| (k, self.get(k)))
    }

    /// Total primitive count (used only for coarse size ordering, e.g. as a
    /// tie-break when two base partitions share a frequency weight).
    pub fn total_primitives(&self) -> u64 {
        self.clb as u64 + self.bram as u64 + self.dsp as u64
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources { clb: self.clb + rhs.clb, bram: self.bram + rhs.bram, dsp: self.dsp + rhs.dsp }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Saturating subtraction; see [`Resources::saturating_sub`].
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(rhs)
    }
}

impl Mul<u32> for Resources {
    type Output = Resources;
    fn mul(self, rhs: u32) -> Resources {
        Resources { clb: self.clb * rhs, bram: self.bram * rhs, dsp: self.dsp * rhs }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl Index<ResourceKind> for Resources {
    type Output = u32;
    fn index(&self, kind: ResourceKind) -> &u32 {
        match kind {
            ResourceKind::Clb => &self.clb,
            ResourceKind::Bram => &self.bram,
            ResourceKind::Dsp => &self.dsp,
        }
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CLB / {} BRAM / {} DSP", self.clb, self.bram, self.dsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(Resources::ZERO.is_zero());
        assert!(!Resources::new(1, 0, 0).is_zero());
        assert_eq!(Resources::default(), Resources::ZERO);
    }

    #[test]
    fn add_and_sum() {
        let a = Resources::new(10, 2, 3);
        let b = Resources::new(5, 7, 0);
        assert_eq!(a + b, Resources::new(15, 9, 3));
        let total: Resources = [a, b, Resources::ZERO].into_iter().sum();
        assert_eq!(total, Resources::new(15, 9, 3));
    }

    #[test]
    fn elementwise_max_matches_eq2() {
        // Paper Eq. 2: a region shared by two mutually exclusive partitions
        // is sized by the larger of each resource kind independently.
        let p1 = Resources::new(818, 0, 28);
        let p2 = Resources::new(500, 4, 34);
        assert_eq!(p1.max(p2), Resources::new(818, 4, 34));
        assert_eq!(p1.min(p2), Resources::new(500, 0, 28));
    }

    #[test]
    fn fits_in_is_componentwise() {
        let cap = Resources::new(100, 10, 10);
        assert!(Resources::new(100, 10, 10).fits_in(&cap));
        assert!(Resources::ZERO.fits_in(&cap));
        assert!(!Resources::new(101, 0, 0).fits_in(&cap));
        assert!(!Resources::new(0, 11, 0).fits_in(&cap));
        assert!(!Resources::new(0, 0, 11).fits_in(&cap));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = Resources::new(1, 5, 0);
        let b = Resources::new(3, 2, 7);
        assert_eq!(a - b, Resources::new(0, 3, 0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut r = Resources::ZERO;
        for (i, kind) in ResourceKind::ALL.into_iter().enumerate() {
            r.set(kind, (i + 1) as u32);
        }
        assert_eq!(r, Resources::new(1, 2, 3));
        assert_eq!(r[ResourceKind::Dsp], 3);
        let pairs: Vec<_> = r.iter().collect();
        assert_eq!(
            pairs,
            vec![(ResourceKind::Clb, 1), (ResourceKind::Bram, 2), (ResourceKind::Dsp, 3)]
        );
    }

    #[test]
    fn scaling() {
        assert_eq!(Resources::new(2, 1, 3) * 4, Resources::new(8, 4, 12));
        assert_eq!(Resources::new(2, 1, 3).total_primitives(), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resources::new(1, 2, 3).to_string(), "1 CLB / 2 BRAM / 3 DSP");
        assert_eq!(ResourceKind::Bram.to_string(), "bram");
    }
}
