//! Tile and configuration-frame arithmetic (paper §IV-B, Eqs. 1 and 3–6).
//!
//! Virtex-5 resources are arranged in columns; a *tile* is one device row
//! high and one column wide and is the smallest unit the supported PR flow
//! can reconfigure. Tiles are homogeneous:
//!
//! | tile kind | primitives per tile | frames per tile |
//! |-----------|---------------------|-----------------|
//! | CLB       | 20 CLBs             | 36              |
//! | DSP       | 8 DSP slices        | 28              |
//! | BRAM      | 4 BlockRAMs         | 30              |
//!
//! A configuration *frame* holds 41 words = 1312 bits. Reconfiguration time
//! is proportional to the number of frames written (paper Eq. 9), so the
//! partitioner measures all areas and costs in frames.

use crate::resources::{ResourceKind, Resources};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// CLBs in one CLB tile.
pub const CLBS_PER_TILE: u32 = 20;
/// DSP slices in one DSP tile.
pub const DSPS_PER_TILE: u32 = 8;
/// BlockRAMs in one BRAM tile.
pub const BRAMS_PER_TILE: u32 = 4;

/// Configuration frames in one CLB tile (`W_clb` in paper Eq. 6).
pub const FRAMES_PER_CLB_TILE: u32 = 36;
/// Configuration frames in one DSP tile (`W_dsp`).
pub const FRAMES_PER_DSP_TILE: u32 = 28;
/// Configuration frames in one BRAM tile (`W_br`).
pub const FRAMES_PER_BRAM_TILE: u32 = 30;

/// 32-bit words per configuration frame.
pub const WORDS_PER_FRAME: u32 = 41;
/// Bits per configuration frame (41 × 32 = 1312).
pub const BITS_PER_FRAME: u32 = WORDS_PER_FRAME * 32;
/// Bytes per configuration frame.
pub const BYTES_PER_FRAME: u32 = WORDS_PER_FRAME * 4;

/// Primitives per tile for a given resource kind.
pub const fn primitives_per_tile(kind: ResourceKind) -> u32 {
    match kind {
        ResourceKind::Clb => CLBS_PER_TILE,
        ResourceKind::Bram => BRAMS_PER_TILE,
        ResourceKind::Dsp => DSPS_PER_TILE,
    }
}

/// Frames per tile for a given resource kind (`W_i` in paper Eqs. 1/6).
pub const fn frames_per_tile(kind: ResourceKind) -> u32 {
    match kind {
        ResourceKind::Clb => FRAMES_PER_CLB_TILE,
        ResourceKind::Bram => FRAMES_PER_BRAM_TILE,
        ResourceKind::Dsp => FRAMES_PER_DSP_TILE,
    }
}

fn ceil_div(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

/// Tile counts of a region: how many whole tiles of each kind it occupies.
///
/// The paper's Eqs. 3–5 quantise raw resource requirements up to whole
/// tiles (partial tiles are avoided because they would require
/// read–modify–write reconfiguration, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TileCounts {
    /// Number of CLB tiles (`R_r_clb`).
    pub clb_tiles: u32,
    /// Number of BRAM tiles (`R_r_br`).
    pub bram_tiles: u32,
    /// Number of DSP tiles (`R_r_dsp`).
    pub dsp_tiles: u32,
}

impl TileCounts {
    /// The zero tile count.
    pub const ZERO: TileCounts = TileCounts { clb_tiles: 0, bram_tiles: 0, dsp_tiles: 0 };

    /// Quantises a raw resource requirement up to whole tiles
    /// (paper Eqs. 3–5: `R_r_clb = ceil(clb / 20)`, etc.).
    pub fn for_resources(r: &Resources) -> TileCounts {
        TileCounts {
            clb_tiles: ceil_div(r.clb, CLBS_PER_TILE),
            bram_tiles: ceil_div(r.bram, BRAMS_PER_TILE),
            dsp_tiles: ceil_div(r.dsp, DSPS_PER_TILE),
        }
    }

    /// Tile count for one kind.
    pub fn get(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Clb => self.clb_tiles,
            ResourceKind::Bram => self.bram_tiles,
            ResourceKind::Dsp => self.dsp_tiles,
        }
    }

    /// Configuration frames spanned by these tiles
    /// (paper Eq. 6: `P_r = Σ_t W_t · R_r_t`).
    pub fn frames(&self) -> u64 {
        ResourceKind::ALL.into_iter().map(|k| self.get(k) as u64 * frames_per_tile(k) as u64).sum()
    }

    /// The primitive capacity provided by these tiles — the *granted*
    /// resources after quantisation, used when summing region areas against
    /// the device capacity.
    pub fn capacity(&self) -> Resources {
        Resources {
            clb: self.clb_tiles * CLBS_PER_TILE,
            bram: self.bram_tiles * BRAMS_PER_TILE,
            dsp: self.dsp_tiles * DSPS_PER_TILE,
        }
    }

    /// Total number of tiles of all kinds.
    pub fn total_tiles(&self) -> u32 {
        self.clb_tiles + self.bram_tiles + self.dsp_tiles
    }

    /// Partial bitstream size in bytes for reconfiguring these tiles.
    pub fn bitstream_bytes(&self) -> u64 {
        self.frames() * BYTES_PER_FRAME as u64
    }
}

impl Add for TileCounts {
    type Output = TileCounts;
    fn add(self, rhs: TileCounts) -> TileCounts {
        TileCounts {
            clb_tiles: self.clb_tiles + rhs.clb_tiles,
            bram_tiles: self.bram_tiles + rhs.bram_tiles,
            dsp_tiles: self.dsp_tiles + rhs.dsp_tiles,
        }
    }
}

impl fmt::Display for TileCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} CLB-t / {} BRAM-t / {} DSP-t ({} frames)",
            self.clb_tiles,
            self.bram_tiles,
            self.dsp_tiles,
            self.frames()
        )
    }
}

/// Frames needed to reconfigure a region with raw requirement `r`, after
/// tile quantisation. This is the area measure the whole algorithm
/// optimises (paper Eqs. 1/6).
pub fn frames_for(r: &Resources) -> u64 {
    TileCounts::for_resources(r).frames()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constants_match_paper() {
        // §IV-B: one frame contains 41 words or 1312 bits.
        assert_eq!(BITS_PER_FRAME, 1312);
        assert_eq!(BYTES_PER_FRAME, 164);
        // One CLB tile has 36 frames, a DSP tile 28, a BRAM tile 30.
        assert_eq!(frames_per_tile(ResourceKind::Clb), 36);
        assert_eq!(frames_per_tile(ResourceKind::Dsp), 28);
        assert_eq!(frames_per_tile(ResourceKind::Bram), 30);
        // One CLB tile contains 20 CLBs, DSP tile 8 slices, BRAM tile 4 BRAMs.
        assert_eq!(primitives_per_tile(ResourceKind::Clb), 20);
        assert_eq!(primitives_per_tile(ResourceKind::Dsp), 8);
        assert_eq!(primitives_per_tile(ResourceKind::Bram), 4);
    }

    #[test]
    fn quantisation_rounds_up() {
        let t = TileCounts::for_resources(&Resources::new(21, 1, 8));
        assert_eq!(t, TileCounts { clb_tiles: 2, bram_tiles: 1, dsp_tiles: 1 });
        // Exactly divisible does not round up.
        let t = TileCounts::for_resources(&Resources::new(40, 4, 16));
        assert_eq!(t, TileCounts { clb_tiles: 2, bram_tiles: 1, dsp_tiles: 2 });
        // Zero stays zero.
        assert_eq!(TileCounts::for_resources(&Resources::ZERO), TileCounts::ZERO);
    }

    #[test]
    fn frames_worked_example() {
        // A region needing 818 CLBs and 28 DSPs (Table II, Filter1):
        // ceil(818/20)=41 CLB tiles, ceil(28/8)=4 DSP tiles
        // frames = 41*36 + 4*28 = 1476 + 112 = 1588.
        let f = frames_for(&Resources::new(818, 0, 28));
        assert_eq!(f, 41 * 36 + 4 * 28);
        assert_eq!(f, 1588);
    }

    #[test]
    fn capacity_covers_request() {
        let r = Resources::new(33, 5, 9);
        let cap = TileCounts::for_resources(&r).capacity();
        assert!(r.fits_in(&cap));
        assert_eq!(cap, Resources::new(40, 8, 16));
    }

    #[test]
    fn bitstream_bytes_are_frames_times_164() {
        let t = TileCounts { clb_tiles: 1, bram_tiles: 0, dsp_tiles: 0 };
        assert_eq!(t.bitstream_bytes(), 36 * 164);
    }

    #[test]
    fn tile_addition() {
        let a = TileCounts { clb_tiles: 1, bram_tiles: 2, dsp_tiles: 3 };
        let b = TileCounts { clb_tiles: 4, bram_tiles: 0, dsp_tiles: 1 };
        let c = a + b;
        assert_eq!(c, TileCounts { clb_tiles: 5, bram_tiles: 2, dsp_tiles: 4 });
        assert_eq!(c.total_tiles(), 11);
    }
}
