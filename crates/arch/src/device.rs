//! FPGA device descriptions and the Virtex-5 device library.
//!
//! The paper's synthetic evaluation (Figs. 7–9) targets nine Virtex-5
//! parts, named on the figure axes: LX20T, LX30, FX30T, SX35T, FX50T,
//! SX70T, FX95T, FX130T and FX200T. Not all of those names exist in the
//! Xilinx DS100 family table; following DESIGN.md §4 we assign each label
//! the capacities of the closest DS100 device, preserving the paper's size
//! ordering. Capacities are in the paper's unified logic-cell unit (see
//! [`crate::resources`]).

use crate::geometry::DeviceGeometry;
use crate::resources::Resources;
use crate::tile::TileCounts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Xilinx Virtex-5 sub-family of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceFamily {
    /// LX / LXT: logic optimised.
    Lx,
    /// SXT: DSP optimised.
    Sx,
    /// FXT: embedded-processor parts.
    Fx,
}

impl fmt::Display for DeviceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceFamily::Lx => "LX",
            DeviceFamily::Sx => "SX",
            DeviceFamily::Fx => "FX",
        })
    }
}

/// One FPGA device: a name, resource capacity, and row count.
///
/// `rows` is the number of configuration rows (each one tile high); the
/// floorplanner derives a column layout from the capacity via
/// [`DeviceGeometry`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Part name as printed on the paper's figure axes, e.g. `"FX70T"`.
    pub name: String,
    /// Sub-family.
    pub family: DeviceFamily,
    /// Total reconfigurable resource capacity.
    pub capacity: Resources,
    /// Number of configuration rows (device height in tiles).
    pub rows: u32,
}

impl Device {
    /// Creates a device.
    pub fn new(name: &str, family: DeviceFamily, capacity: Resources, rows: u32) -> Self {
        Device { name: name.to_string(), family, capacity, rows }
    }

    /// True if a requirement fits in this device.
    pub fn fits(&self, requirement: &Resources) -> bool {
        requirement.fits_in(&self.capacity)
    }

    /// Capacity expressed in whole tiles (the floorplanner's currency).
    pub fn capacity_tiles(&self) -> TileCounts {
        TileCounts {
            clb_tiles: self.capacity.clb / crate::tile::CLBS_PER_TILE,
            bram_tiles: self.capacity.bram / crate::tile::BRAMS_PER_TILE,
            dsp_tiles: self.capacity.dsp / crate::tile::DSPS_PER_TILE,
        }
    }

    /// Builds the column/row geometry for this device (see
    /// [`DeviceGeometry::synthesise`]).
    pub fn geometry(&self) -> DeviceGeometry {
        DeviceGeometry::synthesise(&self.capacity, self.rows)
    }

    /// A coarse total-size measure used to order devices "by FPGA size" as
    /// the paper's Figs. 7/8 do (logic capacity dominates the ordering).
    pub fn size_index(&self) -> u64 {
        self.capacity.clb as u64
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Part names already carry the family letters (e.g. "LX20T").
        write!(f, "XC5V{} ({})", self.name, self.capacity)
    }
}

/// An ordered collection of candidate devices, smallest first.
///
/// Device selection (paper §V) walks this list to find the smallest part
/// that can hold a design's largest configuration, escalating to larger
/// parts when no partitioning other than a single region is feasible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceLibrary {
    devices: Vec<Device>,
}

impl DeviceLibrary {
    /// Builds a library from a list of devices; they are sorted smallest
    /// first by [`Device::size_index`].
    pub fn new(mut devices: Vec<Device>) -> Self {
        devices.sort_by_key(|d| d.size_index());
        DeviceLibrary { devices }
    }

    /// The Virtex-5 library used by the paper's synthetic evaluation: the
    /// nine devices named on the Fig. 7/8 axes, smallest to largest.
    ///
    /// Capacities follow Xilinx DS100 for the closest existing part
    /// (see module docs): slices, BRAM36 and DSP48E counts.
    pub fn virtex5() -> Self {
        use DeviceFamily::*;
        DeviceLibrary::new(vec![
            Device::new("LX20T", Lx, Resources::new(3120, 26, 24), 3),
            Device::new("LX30", Lx, Resources::new(4800, 32, 32), 4),
            Device::new("FX30T", Fx, Resources::new(5120, 68, 64), 4),
            Device::new("SX35T", Sx, Resources::new(5440, 84, 192), 4),
            Device::new("FX50T", Fx, Resources::new(8160, 132, 128), 6),
            Device::new("SX70T", Sx, Resources::new(11200, 148, 384), 8),
            Device::new("FX95T", Fx, Resources::new(14720, 244, 256), 10),
            Device::new("FX130T", Fx, Resources::new(20480, 298, 320), 10),
            Device::new("FX200T", Fx, Resources::new(30720, 456, 384), 12),
        ])
    }

    /// The complete Virtex-5 family per Xilinx DS100 (LX, LXT, SXT and
    /// FXT parts), smallest to largest — a superset of [`virtex5`]
    /// useful when device choice should not be limited to the paper's
    /// figure axes. Capacities are (slices, BRAM36, DSP48E).
    ///
    /// [`virtex5`]: DeviceLibrary::virtex5
    pub fn virtex5_full() -> Self {
        use DeviceFamily::*;
        DeviceLibrary::new(vec![
            Device::new("LX20T", Lx, Resources::new(3120, 26, 24), 3),
            Device::new("LX30", Lx, Resources::new(4800, 32, 32), 4),
            Device::new("LX30T", Lx, Resources::new(4800, 36, 32), 4),
            Device::new("FX30T", Fx, Resources::new(5120, 68, 64), 4),
            Device::new("SX35T", Sx, Resources::new(5440, 84, 192), 4),
            Device::new("LX50", Lx, Resources::new(7200, 48, 48), 6),
            Device::new("LX50T", Lx, Resources::new(7200, 60, 48), 6),
            Device::new("SX50T", Sx, Resources::new(8160, 132, 288), 6),
            Device::new("FX70T", Fx, Resources::new(11200, 148, 128), 8),
            Device::new("LX85", Lx, Resources::new(12960, 96, 48), 8),
            Device::new("SX95T", Sx, Resources::new(14720, 244, 640), 10),
            Device::new("FX100T", Fx, Resources::new(16000, 228, 256), 10),
            Device::new("LX110", Lx, Resources::new(17280, 128, 64), 10),
            Device::new("FX130T", Fx, Resources::new(20480, 298, 320), 10),
            Device::new("LX155", Lx, Resources::new(24320, 192, 128), 10),
            Device::new("FX200T", Fx, Resources::new(30720, 456, 384), 12),
            Device::new("LX220", Lx, Resources::new(34560, 192, 128), 12),
            Device::new("SX240T", Sx, Resources::new(37440, 516, 1056), 12),
            Device::new("LX330", Lx, Resources::new(51840, 288, 192), 12),
        ])
    }

    /// Devices smallest-first.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks a device up by name (case-insensitive, with or without the
    /// `XC5V` prefix).
    pub fn by_name(&self, name: &str) -> Option<&Device> {
        let norm = name.trim().to_ascii_uppercase();
        let norm = norm.strip_prefix("XC5V").unwrap_or(&norm);
        self.devices.iter().find(|d| d.name.eq_ignore_ascii_case(norm))
    }

    /// The smallest device that can hold `requirement`, if any.
    pub fn smallest_fitting(&self, requirement: &Resources) -> Option<&Device> {
        self.devices.iter().find(|d| d.fits(requirement))
    }

    /// Devices strictly larger than `device` (candidates for escalation),
    /// smallest first.
    pub fn larger_than<'a>(&'a self, device: &Device) -> impl Iterator<Item = &'a Device> + 'a {
        let idx = self.index_of(device);
        self.devices
            .iter()
            .enumerate()
            .filter(move |(i, _)| idx.is_none_or(|n| *i > n))
            .map(|(_, d)| d)
    }

    /// Position of a device in the size ordering.
    pub fn index_of(&self, device: &Device) -> Option<usize> {
        self.devices.iter().position(|d| d.name == device.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex5_has_the_nine_figure_axis_devices() {
        let lib = DeviceLibrary::virtex5();
        let names: Vec<&str> = lib.devices().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["LX20T", "LX30", "FX30T", "SX35T", "FX50T", "SX70T", "FX95T", "FX130T", "FX200T"]
        );
    }

    #[test]
    fn library_is_sorted_smallest_first() {
        let lib = DeviceLibrary::virtex5();
        let sizes: Vec<u64> = lib.devices().iter().map(|d| d.size_index()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lookup_by_name_is_forgiving() {
        let lib = DeviceLibrary::virtex5();
        assert!(lib.by_name("fx70t").is_none()); // FX70T is not in the figure set
        assert_eq!(lib.by_name("sx35t").unwrap().name, "SX35T");
        assert_eq!(lib.by_name("XC5VLX30").unwrap().name, "LX30");
        assert_eq!(lib.by_name(" LX20T ").unwrap().name, "LX20T");
    }

    #[test]
    fn smallest_fitting_walks_up() {
        let lib = DeviceLibrary::virtex5();
        // Tiny design fits the smallest part.
        let d = lib.smallest_fitting(&Resources::new(100, 2, 2)).unwrap();
        assert_eq!(d.name, "LX20T");
        // A DSP-hungry design skips the logic-only parts.
        let d = lib.smallest_fitting(&Resources::new(100, 2, 100)).unwrap();
        assert_eq!(d.name, "SX35T");
        // Too large for everything.
        assert!(lib.smallest_fitting(&Resources::new(1_000_000, 0, 0)).is_none());
    }

    #[test]
    fn larger_than_yields_strictly_larger() {
        let lib = DeviceLibrary::virtex5();
        let base = lib.by_name("SX35T").unwrap().clone();
        let names: Vec<&str> = lib.larger_than(&base).map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["FX50T", "SX70T", "FX95T", "FX130T", "FX200T"]);
    }

    #[test]
    fn full_library_is_a_superset_and_sorted() {
        let full = DeviceLibrary::virtex5_full();
        let figs = DeviceLibrary::virtex5();
        assert_eq!(full.len(), 19);
        // The figure library's labels exist in DS100 except the three
        // paper-only axis names (FX50T/SX70T/FX95T), which alias the
        // closest real parts.
        let aliases = ["FX50T", "SX70T", "FX95T"];
        for d in figs.devices() {
            match full.by_name(&d.name) {
                Some(in_full) => assert_eq!(in_full.capacity, d.capacity, "{}", d.name),
                None => assert!(aliases.contains(&d.name.as_str()), "{}", d.name),
            }
        }
        let sizes: Vec<u64> = full.devices().iter().map(|d| d.size_index()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // The case-study part is present in the full library only.
        assert!(full.by_name("FX70T").is_some());
        assert!(figs.by_name("FX70T").is_none());
    }

    #[test]
    fn capacity_tiles_floors() {
        let d = Device::new("T", DeviceFamily::Lx, Resources::new(45, 5, 9), 2);
        let t = d.capacity_tiles();
        assert_eq!(t.clb_tiles, 2);
        assert_eq!(t.bram_tiles, 1);
        assert_eq!(t.dsp_tiles, 1);
    }

    #[test]
    fn display_includes_family() {
        let lib = DeviceLibrary::virtex5();
        let s = lib.by_name("FX130T").unwrap().to_string();
        assert!(s.contains("XC5VFX"), "{s}");
    }
}
