//! Frame Address Register (FAR) model.
//!
//! Virtex-5 configuration memory is addressed per frame through the FAR
//! (UG191, the paper's ref \[12\]): a frame address names the block type,
//! the device half (top/bottom), the row within that half, the major
//! column, and the minor frame within the column. The flow's bitstream
//! generator uses this model to emit a correct type-1 FAR write for each
//! placed region, and the runtime can map an address back to a tile.
//!
//! Simplifications relative to silicon, documented per DESIGN.md §4:
//! rows count from the device bottom (no top/bottom split mirroring), and
//! the minor count per column follows the tile frame counts of
//! [`crate::tile`] (36/28/30 for CLB/DSP/BRAM interconnect-and-content
//! frames).

use crate::geometry::{BlockKind, DeviceGeometry};
use crate::tile::frames_per_tile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// FAR block type field (UG191 table 6-9, abridged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockType {
    /// Interconnect & configuration (CLB/DSP/IO columns).
    InterconnectAndCfg,
    /// BlockRAM content.
    BramContent,
}

impl BlockType {
    fn field(self) -> u32 {
        match self {
            BlockType::InterconnectAndCfg => 0,
            BlockType::BramContent => 1,
        }
    }
}

/// A decoded frame address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameAddress {
    /// Block type.
    pub block_type: BlockType,
    /// Configuration row (from the bottom; no top/bottom mirroring).
    pub row: u32,
    /// Major column index.
    pub major: u32,
    /// Minor frame index within the column.
    pub minor: u32,
}

impl FrameAddress {
    /// Packs into the 32-bit FAR register layout (Virtex-5: type in
    /// bits 23:21, top/bottom in 20 — always 0 here — row in 19:15,
    /// major in 14:7, minor in 6:0).
    pub fn pack(&self) -> u32 {
        (self.block_type.field() << 21)
            | ((self.row & 0x1F) << 15)
            | ((self.major & 0xFF) << 7)
            | (self.minor & 0x7F)
    }

    /// Unpacks from the register layout.
    pub fn unpack(word: u32) -> FrameAddress {
        FrameAddress {
            block_type: if (word >> 21) & 0x7 == 1 {
                BlockType::BramContent
            } else {
                BlockType::InterconnectAndCfg
            },
            row: (word >> 15) & 0x1F,
            major: (word >> 7) & 0xFF,
            minor: word & 0x7F,
        }
    }
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FAR[{:?} row={} major={} minor={}]",
            self.block_type, self.row, self.major, self.minor
        )
    }
}

/// Maps a rectangular tile region (column range × row range) of a device
/// geometry to its ordered frame addresses: row-major, column by column,
/// minor frames innermost — the write order of a partial bitstream.
pub fn frames_for_rect(
    geometry: &DeviceGeometry,
    cols: std::ops::Range<usize>,
    rows: std::ops::Range<u32>,
) -> Vec<FrameAddress> {
    let mut out = Vec::new();
    for row in rows {
        for col in cols.clone() {
            let kind = geometry.column(col);
            let minors = frames_per_tile(kind.resource());
            let block_type = match kind {
                BlockKind::Bram => BlockType::BramContent,
                _ => BlockType::InterconnectAndCfg,
            };
            for minor in 0..minors {
                out.push(FrameAddress { block_type, row, major: col as u32, minor });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BlockKind::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let far =
            FrameAddress { block_type: BlockType::BramContent, row: 5, major: 113, minor: 29 };
        assert_eq!(FrameAddress::unpack(far.pack()), far);
        let far2 =
            FrameAddress { block_type: BlockType::InterconnectAndCfg, row: 0, major: 0, minor: 0 };
        assert_eq!(far2.pack(), 0);
        assert_eq!(FrameAddress::unpack(0), far2);
    }

    #[test]
    fn rect_frame_count_matches_tile_model() {
        // 2 CLB cols + 1 BRAM col + 1 DSP col over 2 rows:
        // (2*36 + 30 + 28) * 2 = 260 frames.
        let g = DeviceGeometry::new(vec![Clb, Clb, Bram, Dsp], 2);
        let frames = frames_for_rect(&g, 0..4, 0..2);
        assert_eq!(frames.len(), 260);
        // BRAM frames carry the BRAM content block type.
        let bram_frames = frames.iter().filter(|f| f.block_type == BlockType::BramContent).count();
        assert_eq!(bram_frames, 30 * 2);
    }

    #[test]
    fn frames_are_write_ordered() {
        let g = DeviceGeometry::new(vec![Clb, Clb], 2);
        let frames = frames_for_rect(&g, 0..2, 0..2);
        // Row-major, then column, then minor.
        assert_eq!(
            frames[0],
            FrameAddress { block_type: BlockType::InterconnectAndCfg, row: 0, major: 0, minor: 0 }
        );
        assert_eq!(frames[35].minor, 35);
        assert_eq!(frames[36].major, 1);
        assert_eq!(frames[72].row, 1);
    }

    #[test]
    fn sub_rectangles_address_their_columns() {
        let g = DeviceGeometry::new(vec![Clb, Bram, Clb], 3);
        let frames = frames_for_rect(&g, 1..2, 2..3);
        assert_eq!(frames.len(), 30);
        assert!(frames.iter().all(|f| f.major == 1 && f.row == 2));
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_pack_unpack(row in 0u32..32, major in 0u32..256, minor in 0u32..128, bram in any::<bool>()) {
            let far = FrameAddress {
                block_type: if bram { BlockType::BramContent } else { BlockType::InterconnectAndCfg },
                row, major, minor,
            };
            prop_assert_eq!(FrameAddress::unpack(far.pack()), far);
        }
    }
}
