//! ICAP (Internal Configuration Access Port) timing model.
//!
//! The paper measures reconfiguration cost in frames (Eq. 9: configuration
//! time is proportional to region area) and notes the actual time also
//! depends on bitstream fetch delay and ICAP transfer speed. This module
//! turns frame counts into wall-clock time so the runtime simulator
//! (`prpart-runtime`) can report microseconds.
//!
//! The default model matches the Virtex-5 ICAP primitive driven by the
//! authors' open-source controller (paper ref \[15\]): a 32-bit port clocked
//! at 100 MHz, i.e. 400 MB/s peak, with an optional per-transaction fetch
//! overhead to model external-memory latency.

use crate::tile::BYTES_PER_FRAME;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Timing model of an internal configuration port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcapModel {
    /// Port clock frequency in hertz.
    pub clock_hz: u64,
    /// Bytes transferred per clock cycle (4 for the 32-bit Virtex-5 ICAP).
    pub bytes_per_cycle: u32,
    /// Fixed overhead per reconfiguration transaction (bitstream fetch
    /// setup, command words, desync), in nanoseconds.
    pub overhead_ns: u64,
}

impl Default for IcapModel {
    fn default() -> Self {
        IcapModel::virtex5()
    }
}

impl IcapModel {
    /// The Virtex-5 ICAP: 32 bits @ 100 MHz, 1 µs transaction overhead.
    pub const fn virtex5() -> Self {
        IcapModel { clock_hz: 100_000_000, bytes_per_cycle: 4, overhead_ns: 1_000 }
    }

    /// An ideal zero-overhead port; useful in tests where only
    /// proportionality matters.
    pub const fn ideal() -> Self {
        IcapModel { clock_hz: 100_000_000, bytes_per_cycle: 4, overhead_ns: 0 }
    }

    /// Peak throughput in bytes per second.
    pub fn throughput_bytes_per_sec(&self) -> u64 {
        self.clock_hz * self.bytes_per_cycle as u64
    }

    /// Clock cycles needed to stream `frames` configuration frames
    /// (41 words per frame on a 32-bit port).
    pub fn cycles_for_frames(&self, frames: u64) -> u64 {
        let bytes = frames * BYTES_PER_FRAME as u64;
        bytes.div_ceil(self.bytes_per_cycle as u64)
    }

    /// Wall-clock time to reconfigure `frames` frames, including the fixed
    /// transaction overhead (zero frames take zero time: no transaction).
    pub fn time_for_frames(&self, frames: u64) -> Duration {
        if frames == 0 {
            return Duration::ZERO;
        }
        let cycles = self.cycles_for_frames(frames);
        let ns = cycles * 1_000_000_000 / self.clock_hz + self.overhead_ns;
        Duration::from_nanos(ns)
    }

    /// Wall-clock time to scrub a region of `frames` frames: read the
    /// configuration frames back, verify them, and rewrite them — two
    /// passes through the port plus one transaction overhead. This is
    /// the recovery step real systems use against SEU-corrupted
    /// configuration memory.
    pub fn scrub_time_for_frames(&self, frames: u64) -> Duration {
        if frames == 0 {
            return Duration::ZERO;
        }
        let cycles = 2 * self.cycles_for_frames(frames);
        let ns = cycles * 1_000_000_000 / self.clock_hz + self.overhead_ns;
        Duration::from_nanos(ns)
    }

    /// Wall-clock time to push `bytes` of bitstream through the port.
    pub fn time_for_bytes(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        let cycles = bytes.div_ceil(self.bytes_per_cycle as u64);
        let ns = cycles * 1_000_000_000 / self.clock_hz + self.overhead_ns;
        Duration::from_nanos(ns)
    }
}

/// Convenience: time for one frame on the default Virtex-5 model
/// (41 cycles @ 100 MHz = 410 ns, plus overhead).
pub fn frame_time_virtex5() -> Duration {
    IcapModel::virtex5().time_for_frames(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex5_throughput_is_400mb_per_sec() {
        assert_eq!(IcapModel::virtex5().throughput_bytes_per_sec(), 400_000_000);
    }

    #[test]
    fn one_frame_is_41_cycles() {
        // 41 words * 4 bytes / 4 bytes-per-cycle = 41 cycles.
        let m = IcapModel::ideal();
        assert_eq!(m.cycles_for_frames(1), crate::tile::WORDS_PER_FRAME as u64);
        assert_eq!(m.time_for_frames(1), Duration::from_nanos(410));
    }

    #[test]
    fn zero_frames_take_zero_time() {
        let m = IcapModel::virtex5();
        assert_eq!(m.time_for_frames(0), Duration::ZERO);
        assert_eq!(m.time_for_bytes(0), Duration::ZERO);
    }

    #[test]
    fn time_scales_linearly_with_frames() {
        let m = IcapModel::ideal();
        let t1 = m.time_for_frames(100);
        let t2 = m.time_for_frames(200);
        assert_eq!(t2, t1 * 2);
    }

    #[test]
    fn overhead_is_added_once() {
        let m = IcapModel::virtex5();
        let ideal = IcapModel::ideal();
        let d = m.time_for_frames(10) - ideal.time_for_frames(10);
        assert_eq!(d, Duration::from_nanos(1_000));
    }

    #[test]
    fn scrub_is_two_passes_plus_one_overhead() {
        let m = IcapModel::virtex5();
        let ideal = IcapModel::ideal();
        assert_eq!(
            m.scrub_time_for_frames(10),
            ideal.time_for_frames(10) * 2 + Duration::from_nanos(1_000)
        );
        assert_eq!(m.scrub_time_for_frames(0), Duration::ZERO);
    }

    #[test]
    fn bytes_and_frames_agree() {
        let m = IcapModel::virtex5();
        assert_eq!(m.time_for_frames(7), m.time_for_bytes(7 * BYTES_PER_FRAME as u64));
    }
}
