//! Column-grid device geometry for floorplanning (paper Fig. 4).
//!
//! Virtex-5 devices arrange resources in full-height columns ("blocks"),
//! partitioned vertically into rows; a tile is one row high and one column
//! wide. The official flow reconfigures whole tiles, and PR regions must be
//! rectangular and non-overlapping (§IV-B).
//!
//! Real column orderings are device-specific and not published in a form we
//! can reuse, so [`DeviceGeometry::synthesise`] generates a *plausible*
//! layout from a device's capacity: BRAM and DSP columns interleaved among
//! CLB columns at roughly even spacing, mirroring the look of Fig. 4. The
//! floorplanner only relies on properties that hold for real devices —
//! column homogeneity, full-height columns, row granularity — so the
//! substitution preserves the behaviour under study (DESIGN.md §4).

use crate::resources::{ResourceKind, Resources};
use crate::tile::{primitives_per_tile, BRAMS_PER_TILE, CLBS_PER_TILE, DSPS_PER_TILE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The homogeneous resource kind of one column of tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Column of CLB tiles.
    Clb,
    /// Column of BRAM tiles.
    Bram,
    /// Column of DSP tiles.
    Dsp,
}

impl BlockKind {
    /// The resource kind provided by this column.
    pub fn resource(self) -> ResourceKind {
        match self {
            BlockKind::Clb => ResourceKind::Clb,
            BlockKind::Bram => ResourceKind::Bram,
            BlockKind::Dsp => ResourceKind::Dsp,
        }
    }

    /// One-character symbol used in ASCII floorplan renderings.
    pub fn symbol(self) -> char {
        match self {
            BlockKind::Clb => 'C',
            BlockKind::Bram => 'B',
            BlockKind::Dsp => 'D',
        }
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockKind::Clb => "CLB",
            BlockKind::Bram => "BRAM",
            BlockKind::Dsp => "DSP",
        })
    }
}

/// The tile grid of a device: an ordered list of full-height columns and a
/// row count. Tile `(row, col)` is the unit of occupancy tracking in the
/// floorplanner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    columns: Vec<BlockKind>,
    rows: u32,
}

impl DeviceGeometry {
    /// Builds a geometry with an explicit column order.
    pub fn new(columns: Vec<BlockKind>, rows: u32) -> Self {
        assert!(rows > 0, "device must have at least one row");
        DeviceGeometry { columns, rows }
    }

    /// Synthesises a geometry whose tile capacity covers `capacity` with
    /// `rows` rows: the needed BRAM and DSP columns are spread at even
    /// intervals through the CLB columns, as on real Virtex-5 parts.
    pub fn synthesise(capacity: &Resources, rows: u32) -> Self {
        assert!(rows > 0, "device must have at least one row");
        let cols_for = |prims: u32, per_tile: u32| -> u32 {
            // Tiles needed overall, split across `rows` full-height columns.
            let tiles = prims.div_ceil(per_tile);
            tiles.div_ceil(rows)
        };
        let clb_cols = cols_for(capacity.clb, CLBS_PER_TILE).max(1);
        let bram_cols = cols_for(capacity.bram, BRAMS_PER_TILE);
        let dsp_cols = cols_for(capacity.dsp, DSPS_PER_TILE);

        let total = clb_cols + bram_cols + dsp_cols;
        let mut columns = Vec::with_capacity(total as usize);
        // Interleave: walk the column index space and drop a BRAM or DSP
        // column whenever its cumulative quota falls behind.
        let mut placed = Resources::ZERO; // counts of *columns* placed per kind
        for i in 0..total {
            let frac = (i + 1) as f64 / total as f64;
            let want_bram = (frac * bram_cols as f64).round() as u32;
            let want_dsp = (frac * dsp_cols as f64).round() as u32;
            if placed.bram < want_bram && placed.bram < bram_cols {
                columns.push(BlockKind::Bram);
                placed.bram += 1;
            } else if placed.dsp < want_dsp && placed.dsp < dsp_cols {
                columns.push(BlockKind::Dsp);
                placed.dsp += 1;
            } else if placed.clb < clb_cols {
                columns.push(BlockKind::Clb);
                placed.clb += 1;
            } else if placed.bram < bram_cols {
                columns.push(BlockKind::Bram);
                placed.bram += 1;
            } else {
                columns.push(BlockKind::Dsp);
                placed.dsp += 1;
            }
        }
        DeviceGeometry { columns, rows }
    }

    /// Number of full-height columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (device height in tiles).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The block kind of column `col`.
    pub fn column(&self, col: usize) -> BlockKind {
        self.columns[col]
    }

    /// All columns in order.
    pub fn columns(&self) -> &[BlockKind] {
        &self.columns
    }

    /// Primitive resources contained in a rectangle spanning columns
    /// `col_range` (half-open) over `row_span` rows.
    pub fn rect_resources(&self, col_range: std::ops::Range<usize>, row_span: u32) -> Resources {
        let mut r = Resources::ZERO;
        for col in col_range {
            let kind = self.columns[col].resource();
            let per_tile = primitives_per_tile(kind);
            let current = r.get(kind);
            r.set(kind, current + per_tile * row_span);
        }
        r
    }

    /// Total primitive capacity of the grid.
    pub fn total_resources(&self) -> Resources {
        self.rect_resources(0..self.columns.len(), self.rows)
    }

    /// Renders one row of the column pattern as an ASCII string, e.g.
    /// `"CCCBCCDCC"`. Useful in reports and debugging.
    pub fn pattern(&self) -> String {
        self.columns.iter().map(|c| c.symbol()).collect()
    }
}

impl fmt::Display for DeviceGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rows x {} cols [{}]", self.rows, self.columns.len(), self.pattern())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn synthesised_capacity_covers_request() {
        let cap = Resources::new(3120, 26, 24);
        let g = DeviceGeometry::synthesise(&cap, 3);
        let total = g.total_resources();
        assert!(cap.fits_in(&total), "geometry {total} must cover {cap}");
    }

    #[test]
    fn synthesis_interleaves_special_columns() {
        let g = DeviceGeometry::synthesise(&Resources::new(2000, 40, 40), 4);
        let pat = g.pattern();
        // BRAM and DSP columns should not all be bunched at one end:
        // the first and last quarter must both be mostly CLB.
        assert!(pat.contains('B') && pat.contains('D') && pat.contains('C'));
        let first = &pat[..pat.len() / 4];
        assert!(first.contains('C'), "pattern {pat} front-loads special columns");
    }

    #[test]
    fn rect_resources_counts_by_kind() {
        let g = DeviceGeometry::new(
            vec![BlockKind::Clb, BlockKind::Bram, BlockKind::Clb, BlockKind::Dsp],
            2,
        );
        // Full grid, 2 rows: 2 CLB cols * 20 * 2, 1 BRAM col * 4 * 2, 1 DSP col * 8 * 2.
        assert_eq!(g.total_resources(), Resources::new(80, 8, 16));
        // Sub-rectangle: columns 1..3, 1 row.
        assert_eq!(g.rect_resources(1..3, 1), Resources::new(20, 4, 0));
    }

    #[test]
    fn pattern_symbols() {
        let g = DeviceGeometry::new(vec![BlockKind::Clb, BlockKind::Bram, BlockKind::Dsp], 1);
        assert_eq!(g.pattern(), "CBD");
        assert_eq!(g.to_string(), "1 rows x 3 cols [CBD]");
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        DeviceGeometry::new(vec![BlockKind::Clb], 0);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Synthesised geometries always cover the requested capacity,
        /// for any capacity and row count.
        #[test]
        fn prop_synthesise_covers(
            clb in 0u32..40_000, bram in 0u32..600, dsp in 0u32..1200, rows in 1u32..16,
        ) {
            let cap = Resources::new(clb, bram, dsp);
            let g = DeviceGeometry::synthesise(&cap, rows);
            prop_assert!(cap.fits_in(&g.total_resources()));
            prop_assert_eq!(g.rows(), rows);
            prop_assert!(g.num_columns() >= 1);
        }

        /// Rectangle resources are additive over column splits.
        #[test]
        fn prop_rect_resources_additive(
            kinds in proptest::collection::vec(0u8..3, 2..12),
            rows in 1u32..6,
            split in 1usize..11,
        ) {
            let cols: Vec<BlockKind> = kinds
                .iter()
                .map(|&k| match k { 0 => BlockKind::Clb, 1 => BlockKind::Bram, _ => BlockKind::Dsp })
                .collect();
            let n = cols.len();
            let split = split.min(n);
            let g = DeviceGeometry::new(cols, rows);
            let whole = g.rect_resources(0..n, rows);
            let left = g.rect_resources(0..split, rows);
            let right = g.rect_resources(split..n, rows);
            prop_assert_eq!(whole, left + right);
        }
    }

    #[test]
    fn virtex5_devices_geometries_cover_capacity() {
        for d in crate::device::DeviceLibrary::virtex5().devices() {
            let g = d.geometry();
            assert!(d.capacity.fits_in(&g.total_resources()), "{}: geometry too small", d.name);
        }
    }
}
