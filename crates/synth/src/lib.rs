//! # prpart-synth — synthetic PR design generator
//!
//! Implements the synthetic workload of the paper's evaluation (§V):
//!
//! > "We generated 1000 synthetic designs, with an equal number of
//! > logic-intensive, memory-intensive, DSP-intensive and
//! > DSP-and-memory-intensive circuits. Each design is also augmented with
//! > a static region requiring 90 CLBs and 8 BRAMs ... Designs are
//! > generated containing 2–6 modules, each with a number of modes varying
//! > from 2 to 4. Each mode can use 25 to 4000 CLBs, and the number of
//! > other resources is chosen from a range determined by the number of
//! > CLBs and the type of the circuit ... Configurations are randomly
//! > generated, until every mode present in the design is utilised at
//! > least once."
//!
//! Everything is seeded and deterministic: the same seed regenerates the
//! same corpus, so the figure benchmarks are reproducible run to run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use prpart_arch::Resources;
use prpart_design::{Design, DesignBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::RangeInclusive;

/// The four circuit classes of the paper's synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitClass {
    /// Logic only: no BRAM, no DSP.
    Logic,
    /// Memory-intensive: BRAM proportional to logic.
    Memory,
    /// DSP-intensive: DSP slices proportional to logic.
    Dsp,
    /// Both memory- and DSP-intensive.
    DspMemory,
}

impl CircuitClass {
    /// All classes in corpus round-robin order.
    pub const ALL: [CircuitClass; 4] =
        [CircuitClass::Logic, CircuitClass::Memory, CircuitClass::Dsp, CircuitClass::DspMemory];

    fn wants_bram(self) -> bool {
        matches!(self, CircuitClass::Memory | CircuitClass::DspMemory)
    }

    fn wants_dsp(self) -> bool {
        matches!(self, CircuitClass::Dsp | CircuitClass::DspMemory)
    }
}

impl fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CircuitClass::Logic => "logic",
            CircuitClass::Memory => "memory",
            CircuitClass::Dsp => "dsp",
            CircuitClass::DspMemory => "dsp+memory",
        })
    }
}

/// Tunable ranges of the generator; defaults follow the paper exactly.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Modules per design (paper: 2–6).
    pub modules: RangeInclusive<usize>,
    /// Modes per module (paper: 2–4).
    pub modes: RangeInclusive<usize>,
    /// CLBs per mode (paper: 25–4000).
    pub clbs: RangeInclusive<u32>,
    /// Static region overhead (paper: 90 CLBs + 8 BRAMs, from the
    /// authors' ICAP controller).
    pub static_overhead: Resources,
    /// Upper bound on random configuration draws before missing modes are
    /// force-covered (the paper loops "until every mode ... is utilised
    /// at least once"; the cap guarantees termination).
    pub max_config_attempts: usize,
    /// Probability that a module is absent from a configuration (the
    /// paper's "mode 0", §IV-D). The paper's recipe implies 0 (every
    /// module present); positive values generate special-condition
    /// designs with optional modules.
    pub absence_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            modules: 2..=6,
            modes: 2..=4,
            clbs: 25..=4000,
            static_overhead: Resources::new(90, 8, 0),
            max_config_attempts: 64,
            absence_probability: 0.0,
        }
    }
}

/// One generated design with its provenance.
#[derive(Debug, Clone)]
pub struct SyntheticDesign {
    /// The design itself.
    pub design: Design,
    /// Its circuit class.
    pub class: CircuitClass,
    /// The per-design seed (derived from the corpus seed and index).
    pub seed: u64,
}

/// Draws the non-CLB resources of a mode from ranges determined by its
/// CLB count and the circuit class, mirroring the paper's description.
/// The ratios are calibrated to Virtex-5 fabric (roughly one BRAM per 60
/// logic cells and one DSP per 30 on the densest parts), so that — as in
/// the paper — the generated designs are implementable on the device
/// library, with the occasional large design needing the big parts.
fn secondary_resources(rng: &mut StdRng, class: CircuitClass, clbs: u32) -> Resources {
    let bram = if class.wants_bram() {
        // Memory-intensive: roughly one BRAM per 40–120 CLBs.
        rng.random_range(clbs / 120..=(clbs / 40).max(1)).max(1)
    } else {
        0
    };
    let dsp = if class.wants_dsp() {
        // DSP-intensive: roughly one DSP slice per 40–120 CLBs.
        rng.random_range(clbs / 120..=(clbs / 40).max(1)).max(1)
    } else {
        0
    };
    Resources::new(clbs, bram, dsp)
}

/// Generates one synthetic design of the given class from a seeded RNG.
pub fn generate_design(config: &GeneratorConfig, class: CircuitClass, seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_modules = rng.random_range(config.modules.clone());
    let mut builder = DesignBuilder::new(&format!("synthetic-{class}-{seed:016x}"))
        .static_overhead(config.static_overhead);

    // Modules and modes with class-dependent resources.
    let mut mode_counts = Vec::with_capacity(num_modules);
    for mi in 0..num_modules {
        let num_modes = rng.random_range(config.modes.clone());
        mode_counts.push(num_modes);
        let modes: Vec<(String, Resources)> = (0..num_modes)
            .map(|ki| {
                let clbs = rng.random_range(config.clbs.clone());
                (format!("m{mi}k{ki}"), secondary_resources(&mut rng, class, clbs))
            })
            .collect();
        let module_name = format!("M{mi}");
        let mode_refs: Vec<(&str, Resources)> =
            modes.iter().map(|(n, r)| (n.as_str(), *r)).collect();
        builder = builder.module(&module_name, mode_refs);
    }

    // Random configurations until every mode is used, then force-cover
    // stragglers. With `absence_probability` > 0, modules may take the
    // paper's "mode 0" (absent); at least one module is always present.
    let mut used: Vec<Vec<bool>> = mode_counts.iter().map(|&n| vec![false; n]).collect();
    let mut seen: std::collections::HashSet<Vec<Option<usize>>> = Default::default();
    let mut selections: Vec<Vec<Option<usize>>> = Vec::new();
    let mut attempts = 0;
    while used.iter().flatten().any(|u| !u) && attempts < config.max_config_attempts {
        attempts += 1;
        let mut pick: Vec<Option<usize>> = mode_counts
            .iter()
            .map(|&n| {
                if config.absence_probability > 0.0
                    && rng.random_range(0.0..1.0) < config.absence_probability
                {
                    None
                } else {
                    Some(rng.random_range(0..n))
                }
            })
            .collect();
        if pick.iter().all(Option::is_none) {
            let mi = rng.random_range(0..num_modules);
            pick[mi] = Some(rng.random_range(0..mode_counts[mi]));
        }
        if seen.insert(pick.clone()) {
            for (mi, sel) in pick.iter().enumerate() {
                if let Some(ki) = sel {
                    used[mi][*ki] = true;
                }
            }
            selections.push(pick);
        }
    }
    // Deterministic completion: one configuration per still-unused mode.
    for mi in 0..num_modules {
        for ki in 0..mode_counts[mi] {
            if !used[mi][ki] {
                let mut pick: Vec<Option<usize>> = (0..num_modules)
                    .map(|mj| {
                        // Prefer already-used modes elsewhere to keep the
                        // completion minimal.
                        Some(used[mj].iter().position(|&u| u).unwrap_or(0))
                    })
                    .collect();
                pick[mi] = Some(ki);
                if seen.insert(pick.clone()) {
                    used[mi][ki] = true;
                    selections.push(pick);
                } else {
                    // Collision with an existing configuration: perturb
                    // another module deterministically until fresh.
                    'outer: for mj in (0..num_modules).filter(|&mj| mj != mi) {
                        for kj in 0..mode_counts[mj] {
                            let mut alt = pick.clone();
                            alt[mj] = Some(kj);
                            if seen.insert(alt.clone()) {
                                used[mi][ki] = true;
                                selections.push(alt);
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }

    for (ci, pick) in selections.iter().enumerate() {
        let picks: Vec<(String, String)> = pick
            .iter()
            .enumerate()
            .filter_map(|(mi, sel)| sel.map(|ki| (format!("M{mi}"), format!("m{mi}k{ki}"))))
            .collect();
        let pick_refs: Vec<(&str, &str)> =
            picks.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        builder = builder.configuration(&format!("c{ci}"), pick_refs);
    }

    builder.build().expect("generator emits well-formed designs")
}

/// Generates a corpus of `n` designs, classes round-robin (so `n = 1000`
/// yields the paper's 250 designs per class), each with an independent
/// seed derived from `corpus_seed`.
pub fn generate_corpus(
    config: &GeneratorConfig,
    n: usize,
    corpus_seed: u64,
) -> Vec<SyntheticDesign> {
    (0..n)
        .map(|i| {
            let class = CircuitClass::ALL[i % CircuitClass::ALL.len()];
            // SplitMix64-style per-design seed derivation.
            let seed = corpus_seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            SyntheticDesign { design: generate_design(config, class, seed), class, seed }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = generate_design(&cfg, CircuitClass::Memory, 42);
        let b = generate_design(&cfg, CircuitClass::Memory, 42);
        assert_eq!(a, b);
        let c = generate_design(&cfg, CircuitClass::Memory, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn designs_respect_published_ranges() {
        let cfg = GeneratorConfig::default();
        for seed in 0..50 {
            for class in CircuitClass::ALL {
                let d = generate_design(&cfg, class, seed);
                let nm = d.modules().len();
                assert!((2..=6).contains(&nm), "{nm} modules");
                for m in d.modules() {
                    assert!((2..=4).contains(&m.modes.len()));
                    for k in &m.modes {
                        assert!((25..=4000).contains(&k.resources.clb), "{}", k.resources);
                    }
                }
                assert_eq!(d.static_overhead(), Resources::new(90, 8, 0));
            }
        }
    }

    #[test]
    fn classes_control_resource_mix() {
        let cfg = GeneratorConfig::default();
        let check = |class: CircuitClass, want_bram: bool, want_dsp: bool| {
            let d = generate_design(&cfg, class, 7);
            let total = d.all_modes_resources();
            assert_eq!(total.bram > 0, want_bram, "{class}: {total}");
            assert_eq!(total.dsp > 0, want_dsp, "{class}: {total}");
        };
        check(CircuitClass::Logic, false, false);
        check(CircuitClass::Memory, true, false);
        check(CircuitClass::Dsp, false, true);
        check(CircuitClass::DspMemory, true, true);
    }

    #[test]
    fn every_mode_is_used() {
        let cfg = GeneratorConfig::default();
        for seed in 0..100 {
            let d = generate_design(&cfg, CircuitClass::DspMemory, seed);
            let issues = d.validate();
            assert!(
                !issues
                    .iter()
                    .any(|i| matches!(i, prpart_design::ValidationIssue::UnusedMode { .. })),
                "seed {seed}: {issues:?}"
            );
        }
    }

    #[test]
    fn absence_probability_generates_mode_zero_designs() {
        let cfg = GeneratorConfig { absence_probability: 0.4, ..Default::default() };
        let mut saw_absence = false;
        for seed in 0..20 {
            let d = generate_design(&cfg, CircuitClass::Memory, seed);
            for c in d.configurations() {
                assert!(c.num_present() >= 1, "configurations are never empty");
                if c.num_present() < d.modules().len() {
                    saw_absence = true;
                }
            }
            // Every design still partitions.
            let min = prpart_core::feasibility::minimum_requirement(&d);
            let budget = Resources::new(min.clb * 2, min.bram * 2 + 8, min.dsp * 2 + 8);
            let out = prpart_core::Partitioner::new(budget).partition(&d).unwrap();
            if let Some(best) = out.best {
                best.scheme.validate(&d).unwrap();
            }
        }
        assert!(saw_absence, "absence probability 0.4 never produced an absent module");
    }

    #[test]
    fn corpus_round_robins_classes() {
        let corpus = generate_corpus(&GeneratorConfig::default(), 12, 1);
        for (i, sd) in corpus.iter().enumerate() {
            assert_eq!(sd.class, CircuitClass::ALL[i % 4]);
        }
        let big = generate_corpus(&GeneratorConfig::default(), 20, 1);
        let logic = big.iter().filter(|d| d.class == CircuitClass::Logic).count();
        assert_eq!(logic, 5, "even class split (paper: 250 per class at n=1000)");
    }

    #[test]
    fn corpus_designs_are_partitionable() {
        // Every generated design passes the full pipeline on some device.
        use prpart_arch::DeviceLibrary;
        use prpart_core::{device_select::select_device, Partitioner};
        let corpus = generate_corpus(&GeneratorConfig::default(), 8, 99);
        let lib = DeviceLibrary::virtex5();
        for sd in &corpus {
            match select_device(&sd.design, &lib, Partitioner::new) {
                Ok(choice) => {
                    if let Some(best) = &choice.outcome.best {
                        best.scheme.validate(&sd.design).unwrap();
                    }
                }
                Err(prpart_core::PartitionError::NoFeasibleDevice { .. }) => {
                    // Legitimately possible for giant designs; the sweep
                    // harness counts these separately.
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any seed and class yields a structurally valid design whose
        /// configurations select one mode for every module.
        #[test]
        fn prop_generated_designs_are_coherent(seed in 0u64..10_000, class_idx in 0usize..4) {
            let cfg = GeneratorConfig::default();
            let d = generate_design(&cfg, CircuitClass::ALL[class_idx], seed);
            for c in 0..d.num_configurations() {
                prop_assert_eq!(
                    d.configurations()[c].num_present(),
                    d.modules().len(),
                    "synthetic configurations select every module"
                );
            }
            prop_assert!(d.num_configurations() >= 2);
        }
    }
}
