//! End-to-end CLI tests: spawn the real `prpart` binary against files on
//! disk, exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn prpart_bin() -> PathBuf {
    // CARGO_BIN_EXE_<name> points at the freshly built binary of this
    // package — Cargo rebuilds it before running these tests.
    PathBuf::from(env!("CARGO_BIN_EXE_prpart"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(prpart_bin()).args(args).output().expect("prpart binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("prpart-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cli_full_session() {
    let dir = workdir();

    // help and devices always work.
    let (out, _, ok) = run(&["help"]);
    assert!(ok && out.contains("USAGE"));
    let (out, _, ok) = run(&["devices", "--full"]);
    assert!(ok && out.contains("SX240T"), "{out}");

    // generate → info → partition → report round-trip.
    let gen_dir = dir.join("designs");
    let (_, _, ok) =
        run(&["generate", "--count", "2", "--seed", "9", "--out", gen_dir.to_str().unwrap()]);
    assert!(ok);
    let design = gen_dir.join("design_0000.xml");
    let (out, _, ok) = run(&["info", design.to_str().unwrap()]);
    assert!(ok && out.contains("largest configuration"), "{out}");

    let scheme = dir.join("scheme.xml");
    let (out, err, ok) = run(&[
        "partition",
        design.to_str().unwrap(),
        "--auto",
        "--xml-out",
        scheme.to_str().unwrap(),
    ]);
    assert!(ok, "partition failed: {err}");
    assert!(out.contains("PRR1") || out.contains("selected device"), "{out}");
    assert!(scheme.exists());

    let (out, err, ok) = run(&["report", design.to_str().unwrap(), scheme.to_str().unwrap()]);
    assert!(ok, "report failed: {err}");
    assert!(out.contains("frames"), "{out}");

    // Errors exit non-zero with a message.
    let (_, err, ok) = run(&["partition", "/nonexistent.xml", "--auto"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");
    let (_, err, ok) = run(&["bogus-subcommand"]);
    assert!(!ok && err.contains("unknown command"), "{err}");
}
