//! # prpart-cli — command-line front end
//!
//! The `prpart` binary drives the whole tool flow from the shell:
//!
//! ```text
//! prpart partition <design.xml> --device SX70T      # partition for a device
//! prpart partition <design.xml> --budget 6800,64,150
//! prpart partition <design.xml> --auto              # smallest-device search
//! prpart flow <design.xml> --device SX70T --out DIR # full flow artefacts
//! prpart devices                                    # list the device library
//! prpart generate --count 10 --seed 1 --out DIR     # synthetic designs
//! prpart simulate <design.xml> --device SX70T       # Monte-Carlo runtime
//! ```
//!
//! All command logic lives here (testable); `main.rs` is a thin shim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use prpart_analysis::{lint_design, LintOptions, ProofChecker, TransitionCertifier};
use prpart_arch::{Device, DeviceFamily, DeviceLibrary, IcapModel, Resources, TileCounts};
use prpart_core::device_select::select_device;
use prpart_core::report::{outcome_summary, scheme_report};
use prpart_core::{
    CheckpointConfig, EvaluatedScheme, Partitioner, SchemeMetrics, SearchBudget, SearchStrategy,
    TransitionSemantics,
};
use prpart_design::Design;
use prpart_floorplan::{place_with_feedback, Obstacle, PlacerStrategy, PlannerConfig};
use prpart_flow::{ArtifactStore, FlowPipeline, StoreFaultModel};

pub use prpart_core::CancelToken;

use prpart_obs::ObsHandle;
use prpart_runtime::{
    run_monte_carlo, run_monte_carlo_observed, ConfigurationManager, FaultModel, IcapController,
    MonteCarloConfig, RecoveryPolicy,
};
use prpart_service::{
    run_replay, OverloadPolicy, ReconfigService, ServiceConfig, WorkloadConfig, WorkloadGenerator,
};
use prpart_synth::{generate_corpus, GeneratorConfig};
use std::fmt::Write as _;

/// A CLI failure: message and suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err<T>(message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError { message: message.into() })
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `prpart partition <design> [target options]`.
    Partition {
        /// Design XML path.
        design: String,
        /// Target: device name, budget, or auto.
        target: Target,
        /// Strategy override.
        strategy: Option<SearchStrategy>,
        /// Disable static promotion.
        no_static: bool,
        /// Pessimistic don't-care semantics.
        pessimistic: bool,
        /// Optional XML report path.
        xml_out: Option<String>,
        /// Optional device-library XML path (defaults to the built-in
        /// Virtex-5 figure library).
        library: Option<String>,
        /// Optional transition-weights XML path (workload-aware
        /// partitioning).
        weights: Option<String>,
        /// Search worker threads (0 = one per core).
        threads: usize,
        /// Budget / checkpoint / resume flags.
        resilience: ResilienceArgs,
        /// Metrics / span-profile export flags.
        obs: ObsArgs,
    },
    /// `prpart flow <design> --device NAME [--out DIR] [--store DIR]`.
    Flow {
        /// Design XML path.
        design: String,
        /// Device name.
        device: String,
        /// Plain output directory (optional when `--store` is given).
        out: Option<String>,
        /// Transactional artifact store directory: atomic digest-guarded
        /// writes, crash-consistent manifest, resume on rerun.
        store: Option<String>,
        /// Seeded storage fault-injection rate in `[0, 1)` (store only).
        store_fault_rate: f64,
        /// Seed of the storage fault model.
        store_fault_seed: u64,
        /// Search worker threads (0 = one per core).
        threads: usize,
        /// Wall-clock deadline for the partitioning search, in seconds.
        deadline_secs: Option<f64>,
        /// Metrics / span-profile export flags.
        obs: ObsArgs,
    },
    /// `prpart floorplan <design> (--device NAME | --budget ...)
    /// [--threads N] [--max-aspect A] [--obstacles FILE] [--render]
    /// [--first-fit] [--max-retries K] [--library FILE]`.
    Floorplan {
        /// Design XML path.
        design: String,
        /// Target device or budget (`--auto` is rejected: a floorplan
        /// needs one concrete fabric).
        target: Target,
        /// Candidate-scoring worker threads (0 = one per core, 1 =
        /// serial; the plan is byte-identical for every value).
        threads: usize,
        /// Maximum width:height (or height:width) ratio of a placed
        /// rectangle; `None` = unconstrained.
        max_aspect: Option<f64>,
        /// Obstacle file: one keep-out per line as two half-open tile
        /// ranges `C0..C1 R0..R1` (columns then rows).
        obstacles: Option<String>,
        /// Append the ASCII tile map to the report.
        render: bool,
        /// Run the legacy first-fit scanner instead of the candidate
        /// engine (the benchmark baseline).
        first_fit: bool,
        /// Budget-tightening retries of the partition→place feedback
        /// loop.
        max_retries: usize,
        /// Optional device-library XML path.
        library: Option<String>,
        /// Metrics / span-profile export flags.
        obs: ObsArgs,
    },
    /// `prpart devices [--library FILE] [--full]`.
    Devices {
        /// Optional device-library XML path.
        library: Option<String>,
        /// Show the full DS100 Virtex-5 family instead of the paper's
        /// nine figure devices.
        full: bool,
    },
    /// `prpart generate --count N --seed S --out DIR`.
    Generate {
        /// Number of designs.
        count: usize,
        /// Corpus seed.
        seed: u64,
        /// Output directory.
        out: String,
    },
    /// `prpart simulate <design> [target] --walks N --len L
    /// [--profile-out FILE] [--fault-rate R] [--fault-seed S]
    /// [--max-retries K] [--safe-config NAME]`.
    Simulate {
        /// Design XML path.
        design: String,
        /// Target device or budget.
        target: Target,
        /// Number of walks.
        walks: usize,
        /// Transitions per walk.
        len: usize,
        /// Write estimated transition weights here (feed back into
        /// `partition --weights`).
        profile_out: Option<String>,
        /// Per-load fault probability (0.0 = fault-free simulator).
        fault_rate: f64,
        /// Base fault seed; walk `i` uses `fault_seed + i`.
        fault_seed: u64,
        /// Recovery policy: retries per region load (None = default).
        max_retries: Option<u32>,
        /// Configuration name to fall back to when a transition fails.
        safe_config: Option<String>,
        /// Search worker threads (0 = one per core).
        threads: usize,
        /// Metrics / span-profile export flags (`--flame-out` here,
        /// since `--profile-out` already means transition weights).
        obs: ObsArgs,
    },
    /// `prpart metrics <design> (--device NAME | --budget ...)
    /// [--format prom] [--threads N]`: partition with instrumentation on
    /// and print the metrics snapshot to stdout.
    Metrics {
        /// Design XML path.
        design: String,
        /// Target device or budget.
        target: Target,
        /// Search worker threads (0 = one per core).
        threads: usize,
        /// Emit Prometheus text format instead of versioned JSON.
        prom: bool,
    },
    /// `prpart info <design.xml>`.
    Info {
        /// Design XML path.
        design: String,
    },
    /// `prpart pareto <design.xml> (--device NAME | --budget ...)`.
    Pareto {
        /// Design XML path.
        design: String,
        /// Target device or budget.
        target: Target,
        /// Search worker threads (0 = one per core).
        threads: usize,
    },
    /// `prpart lint <design.xml> [--device NAME | --budget ...] [--json]`.
    Lint {
        /// Design XML path.
        design: String,
        /// Optional target whose budget enables the device-fit rules.
        target: Option<Target>,
        /// Optional device-library XML path.
        library: Option<String>,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `prpart check <design.xml> <scheme.xml> [--device NAME |
    /// --budget ...] [--pessimistic] [--json]`.
    Check {
        /// Design XML path.
        design: String,
        /// Partitioning report XML (from `partition --xml-out`).
        scheme: String,
        /// Optional target whose budget enables the fit rules.
        target: Option<Target>,
        /// Optional device-library XML path.
        library: Option<String>,
        /// The report's times were computed under pessimistic semantics.
        pessimistic: bool,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `prpart certify <design.xml> <scheme.xml> [--deadline SECS]
    /// [--blacklist-depth K] [--safe-config NAME] [--format json|text]`.
    Certify {
        /// Design XML path.
        design: String,
        /// Partitioning report XML (from `partition --xml-out`).
        scheme: String,
        /// Per-transition worst-case deadline in seconds (TC006).
        deadline: Option<f64>,
        /// Blacklist-subset depth for degraded-mode reachability.
        blacklist_depth: Option<usize>,
        /// Safe configuration whose reachability must be proven (TC007).
        safe_config: Option<String>,
        /// Emit the machine-checkable JSON certificate instead of text.
        json: bool,
    },
    /// `prpart serve <design.xml> <scheme.xml> [--arrivals R]
    /// [--duration SECS] [--policy reject-new|drop-oldest|deadline-aware]
    /// [--seed N] [--queue N] [--fault-rate R] [--fault-seed S]
    /// [--metrics-out FILE] [--format json|prom]`.
    Serve {
        /// Design XML path.
        design: String,
        /// Partitioning report XML (from `partition --xml-out`).
        scheme: String,
        /// Offered load in arrivals per virtual second.
        arrivals: f64,
        /// Arrival-window length in virtual seconds.
        duration_secs: f64,
        /// Overload policy.
        policy: OverloadPolicy,
        /// Workload seed.
        seed: u64,
        /// Admission-queue capacity.
        queue_capacity: usize,
        /// Per-load fault probability for the managed fabric.
        fault_rate: f64,
        /// Fault-model seed.
        fault_seed: u64,
        /// Observability outputs.
        obs: ObsArgs,
    },
    /// `prpart report <design.xml> <scheme.xml> [--simulate]`.
    Report {
        /// Design XML path.
        design: String,
        /// Saved partitioning XML (from `partition --xml-out`).
        scheme: String,
        /// Also run a quick Monte-Carlo on the loaded scheme.
        simulate: bool,
    },
    /// `prpart help`.
    Help,
}

/// Where to implement the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A named device from the Virtex-5 library.
    Device(String),
    /// An explicit resource budget.
    Budget(Resources),
    /// Smallest-device search.
    Auto,
}

/// Resilience flags for long-running searches: cooperative budgets plus
/// checkpoint/resume. Defaults to no limits and no checkpointing, which
/// leaves the output byte-identical to the pre-resilience CLI.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceArgs {
    /// `--deadline SECS` — wall-clock budget for the search.
    pub deadline_secs: Option<f64>,
    /// `--max-states N` — state-evaluation budget.
    pub max_states: Option<u64>,
    /// `--max-units N` — work-unit budget (deterministic truncation at
    /// `--threads 1`).
    pub max_units: Option<usize>,
    /// `--checkpoint FILE` — snapshot completed units here.
    pub checkpoint: Option<String>,
    /// `--checkpoint-every N` — flush interval in units (0 = default).
    pub checkpoint_every: usize,
    /// `--resume FILE` — replay a checkpoint instead of starting cold.
    pub resume: Option<String>,
}

impl ResilienceArgs {
    /// Builds the core [`SearchBudget`], wiring in the process-level
    /// cancel token (Ctrl-C) when one is installed.
    fn budget(&self, cancel: Option<CancelToken>) -> SearchBudget {
        let mut budget = SearchBudget::new();
        if let Some(secs) = self.deadline_secs {
            budget = budget.with_deadline(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(n) = self.max_states {
            budget = budget.with_max_states(n);
        }
        if let Some(n) = self.max_units {
            budget = budget.with_max_units(n);
        }
        if let Some(token) = cancel {
            budget = budget.with_cancel(token);
        }
        budget
    }

    fn checkpoint_config(&self) -> Option<CheckpointConfig> {
        self.checkpoint.as_ref().map(|path| {
            let mut config = CheckpointConfig::new(path);
            if self.checkpoint_every > 0 {
                config = config.with_every(self.checkpoint_every);
            }
            config
        })
    }
}

/// Observability flags shared by `partition`, `flow` and `simulate`.
/// All default to off, which keeps every instrumented path disabled and
/// the command output byte-identical to the pre-observability CLI.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsArgs {
    /// `--metrics-out FILE` — write a metrics snapshot here after the
    /// command finishes.
    pub metrics_out: Option<String>,
    /// `--format prom` — emit the snapshot in Prometheus text
    /// exposition format instead of the default versioned JSON.
    pub prom: bool,
    /// `--profile-out FILE` (`--flame-out` on `simulate`, whose
    /// `--profile-out` already means transition weights) — write the
    /// collapsed-stack span profile here (flamegraph.pl input).
    pub profile_out: Option<String>,
}

impl ObsArgs {
    /// True when any observability output was requested, i.e. the
    /// instrumentation must actually record.
    fn active(&self) -> bool {
        self.metrics_out.is_some() || self.profile_out.is_some()
    }

    /// The handle the command should instrument with: recording only
    /// when an output was requested.
    fn handle(&self) -> ObsHandle {
        if self.active() {
            ObsHandle::enabled()
        } else {
            ObsHandle::disabled()
        }
    }

    /// Parses the shared flags; returns true when `flag` was consumed.
    /// `--profile-out` is claimed by the caller on `simulate`, which
    /// passes the collapsed-stack path under `--flame-out` instead.
    fn parse_flag(
        &mut self,
        flag: &str,
        it: &mut std::iter::Peekable<std::slice::Iter<String>>,
        profile_flag: &str,
    ) -> Result<bool, CliError> {
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            it.next().cloned().ok_or(CliError { message: format!("{flag} needs a value") })
        };
        match flag {
            "--metrics-out" => self.metrics_out = Some(value(it)?),
            "--format" => {
                self.prom = match value(it)?.as_str() {
                    "json" => false,
                    "prom" => true,
                    other => return err(format!("unknown metrics format '{other}'")),
                }
            }
            f if f == profile_flag => self.profile_out = Some(value(it)?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Renders the metrics snapshot of `obs`, first gating it through the
/// PL012 registration lint: a kind or bucket-bound conflict means the
/// numbers are silently wrong, so the export fails instead of lying.
fn render_metrics(obs: &ObsHandle, prom: bool) -> Result<String, CliError> {
    let snapshot = obs.snapshot();
    let registrations: Vec<(String, u64)> =
        snapshot.registrations.iter().map(|(name, r)| (name.clone(), r.registrations)).collect();
    let report = prpart_analysis::lint_metric_registrations("metrics", &registrations);
    if report.has_errors() {
        return Err(CliError { message: report.render_text() });
    }
    Ok(if prom { snapshot.to_prometheus() } else { snapshot.to_json() })
}

/// Writes the requested observability outputs and notes them in the
/// command summary. A no-op with inactive [`ObsArgs`].
fn write_obs_outputs(obs: &ObsHandle, args: &ObsArgs, out: &mut String) -> Result<(), CliError> {
    if let Some(path) = &args.metrics_out {
        let text = render_metrics(obs, args.prom)?;
        std::fs::write(path, text)
            .map_err(|e| CliError { message: format!("cannot write {path}: {e}") })?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if let Some(path) = &args.profile_out {
        std::fs::write(path, obs.collapsed_profile())
            .map_err(|e| CliError { message: format!("cannot write {path}: {e}") })?;
        let _ = writeln!(out, "span profile written to {path}");
    }
    Ok(())
}

/// Usage text.
pub const USAGE: &str = "\
prpart — automated partitioning for partial reconfiguration (Vipin & Fahmy, IPDPSW 2013)

USAGE:
  prpart partition <design.xml> (--device NAME | --budget CLB,BRAM,DSP | --auto)
                   [--strategy greedy|beam|exhaustive] [--no-static]
                   [--pessimistic] [--xml-out FILE] [--library FILE]
                   [--weights FILE] [--threads N]
                   [--deadline SECS] [--max-states N] [--max-units N]
                   [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
                   [--metrics-out FILE] [--format json|prom] [--profile-out FILE]
  prpart flow <design.xml> --device NAME (--out DIR | --store DIR)
              [--store-fault-rate R] [--store-fault-seed S]
              [--threads N] [--deadline SECS]
              [--metrics-out FILE] [--format json|prom] [--profile-out FILE]
  prpart floorplan <design.xml> (--device NAME | --budget CLB,BRAM,DSP)
                   [--threads N] [--max-aspect A] [--obstacles FILE]
                   [--render] [--first-fit] [--max-retries K]
                   [--library FILE]
                   [--metrics-out FILE] [--format json|prom] [--profile-out FILE]
  prpart devices [--library FILE] [--full]
  prpart generate [--count N] [--seed S] --out DIR
  prpart simulate <design.xml> (--device NAME | --budget CLB,BRAM,DSP)
                  [--walks N] [--len L] [--profile-out FILE]
                  [--fault-rate R] [--fault-seed S] [--max-retries K]
                  [--safe-config NAME] [--threads N]
                  [--metrics-out FILE] [--format json|prom] [--flame-out FILE]
  prpart metrics <design.xml> (--device NAME | --budget CLB,BRAM,DSP)
                 [--format json|prom] [--threads N]
  prpart report <design.xml> <scheme.xml> [--simulate]
  prpart pareto <design.xml> (--device NAME | --budget CLB,BRAM,DSP)
                [--threads N]
  prpart lint <design.xml> [--device NAME | --budget CLB,BRAM,DSP]
              [--library FILE] [--json]
  prpart check <design.xml> <scheme.xml> [--device NAME | --budget CLB,BRAM,DSP]
               [--library FILE] [--pessimistic] [--json]
  prpart certify <design.xml> <scheme.xml> [--deadline SECS]
                 [--blacklist-depth K] [--safe-config NAME]
                 [--format json|text]
  prpart serve <design.xml> <scheme.xml> [--arrivals R] [--duration SECS]
               [--policy reject-new|drop-oldest|deadline-aware]
               [--seed N] [--queue N] [--fault-rate R] [--fault-seed S]
               [--metrics-out FILE] [--format json|prom] [--profile-out FILE]
  prpart info <design.xml>
  prpart help

`lint` runs the static design linter (rules PL001..) before any search;
it exits non-zero when an error-severity finding is present. `check`
re-verifies a saved partitioning report with the independent
proof-checker (rules PC001..) and exits non-zero unless the scheme
certifies clean. `certify` model-checks the complete
configuration-transition graph (rules TC001..): frame predictions,
worst-case transition-time bounds against `--deadline`, single-ICAP
serialization, and degraded-mode reachability for every region
blacklist up to `--blacklist-depth` (with `--safe-config` reachability
proven). `--format json` emits the versioned machine-checkable
certificate. See docs/static_analysis.md.

`serve` replays a seeded open-loop workload (`--arrivals` requests per
virtual second for `--duration` seconds) against the admission-controlled
reconfiguration service on a virtual clock: bounded queue (`--queue`),
overload `--policy`, per-region circuit breakers, and a graceful drain.
The scheme is certified first; deadline-aware shedding uses the
certificate's per-edge transition-time bounds. The replay is
deterministic: same seed, same report and same metrics snapshot. See
docs/resilience.md.

`floorplan` runs the partition→place feedback loop and prints the
resulting column-grid floorplan: per-region rectangles, wasted frames
and fabric utilisation. The default candidate engine enumerates every
irreducible covering rectangle per region and picks the one minimising
wasted frames, then aspect penalty, then communication-weighted
wire-length from the design's connectivity; `--first-fit` switches back
to the legacy scanner (the benchmark baseline). `--max-aspect A` bounds
rectangle aspect ratios, `--obstacles FILE` loads hard-macro keep-outs
(one `C0..C1 R0..R1` half-open tile-range pair per line, `#` comments),
`--render` appends the ASCII tile map and `--max-retries K` bounds the
budget-tightening retries when nothing places. The report is
deterministic and byte-identical for every `--threads` value. See
docs/floorplan.md.

`--threads N` fans the region-allocation search across N worker threads
(0, the default, uses one per core). The result is byte-identical for
every thread count; threads only change the wall time.

`--deadline`/`--max-states`/`--max-units` bound the search without
failing it: a tripped budget (or Ctrl-C) still prints the certified
best-so-far scheme with the truncation noted. `--checkpoint FILE`
snapshots completed work every `--checkpoint-every N` units (atomic
write, CRC-guarded); `--resume FILE` replays the snapshot and produces
output byte-identical to an uninterrupted run. See docs/resilience.md.

`flow --store DIR` routes the flow through a transactional artifact
store: every artifact lands atomically with a content digest and the
CRC-guarded manifest is committed last, so a run killed at any point
reruns to byte-identical artifacts, reusing everything already
committed and quarantining (then regenerating) anything corrupt.
`--store-fault-rate R` / `--store-fault-seed S` inject seeded storage
faults to exercise that recovery path. See docs/artifact_store.md.

`--metrics-out FILE` writes a metrics snapshot (search counters, stage
span timings, runtime reliability) after the command; `--format prom`
switches it from versioned JSON to Prometheus text format.
`--profile-out FILE` (on `simulate`: `--flame-out FILE`, since its
`--profile-out` already means transition weights) writes the
collapsed-stack span profile flamegraph.pl understands. With none of
these flags the instrumentation is disabled and the output is
byte-identical to not having it. `prpart metrics` partitions with
instrumentation on and prints the snapshot to stdout. Every export is
gated by lint rule PL012 (each metric name registered exactly once).
See docs/observability.md.
";

/// Parses the `--obstacles` file body: one keep-out per line as two
/// half-open tile ranges `C0..C1 R0..R1` (columns then rows). Blank
/// lines and `#`-comments are skipped.
fn parse_obstacles(text: &str) -> Result<Vec<Obstacle>, String> {
    fn range(s: &str) -> Option<(u32, u32)> {
        let (a, b) = s.split_once("..")?;
        let a: u32 = a.trim().parse().ok()?;
        let b: u32 = b.trim().parse().ok()?;
        (a < b).then_some((a, b))
    }
    let mut obstacles = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parsed = match (parts.next(), parts.next(), parts.next()) {
            (Some(cols), Some(rows), None) => range(cols).zip(range(rows)),
            _ => None,
        };
        let Some(((c0, c1), (r0, r1))) = parsed else {
            return Err(format!(
                "line {}: expected 'C0..C1 R0..R1' (two half-open, non-empty tile ranges), \
                 got '{line}'",
                idx + 1
            ));
        };
        obstacles.push(Obstacle { cols: c0 as usize..c1 as usize, rows: r0..r1 });
    }
    Ok(obstacles)
}

fn load_obstacles(path: &str) -> Result<Vec<Obstacle>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError { message: format!("cannot read {path}: {e}") })?;
    parse_obstacles(&text).map_err(|m| CliError { message: format!("{path}: {m}") })
}

fn parse_budget(s: &str) -> Result<Resources, CliError> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return err(format!("budget '{s}' must be CLB,BRAM,DSP"));
    }
    let nums: Result<Vec<u32>, _> = parts.iter().map(|p| p.trim().parse()).collect();
    match nums {
        Ok(v) => Ok(Resources::new(v[0], v[1], v[2])),
        Err(_) => err(format!("budget '{s}' contains a non-number")),
    }
}

/// Parses an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let flag_value = |flag: &str,
                      it: &mut std::iter::Peekable<std::slice::Iter<String>>|
     -> Result<String, CliError> {
        it.next().cloned().ok_or(CliError { message: format!("{flag} needs a value") })
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "devices" => {
            let mut library = None;
            let mut full = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--library" => library = Some(flag_value("--library", &mut it)?),
                    "--full" => full = true,
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            Ok(Command::Devices { library, full })
        }
        "partition" => {
            let mut design = None;
            let mut target = None;
            let mut strategy = None;
            let mut no_static = false;
            let mut pessimistic = false;
            let mut xml_out = None;
            let mut library = None;
            let mut weights = None;
            let mut threads = 0usize;
            let mut resilience = ResilienceArgs::default();
            let mut obs = ObsArgs::default();
            while let Some(a) = it.next() {
                if obs.parse_flag(a.as_str(), &mut it, "--profile-out")? {
                    continue;
                }
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--auto" => target = Some(Target::Auto),
                    "--strategy" => {
                        strategy = Some(match flag_value("--strategy", &mut it)?.as_str() {
                            "greedy" => SearchStrategy::default(),
                            "beam" => SearchStrategy::Beam { width: 16, max_candidate_sets: 6 },
                            "exhaustive" => SearchStrategy::Exhaustive {
                                max_partitions: 12,
                                max_candidate_sets: 4,
                            },
                            other => return err(format!("unknown strategy '{other}'")),
                        })
                    }
                    "--no-static" => no_static = true,
                    "--pessimistic" => pessimistic = true,
                    "--xml-out" => xml_out = Some(flag_value("--xml-out", &mut it)?),
                    "--library" => library = Some(flag_value("--library", &mut it)?),
                    "--weights" => weights = Some(flag_value("--weights", &mut it)?),
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    "--deadline" => {
                        let secs: f64 = flag_value("--deadline", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--deadline needs seconds".into() })?;
                        if !secs.is_finite() || secs < 0.0 {
                            return err("--deadline must be a non-negative number of seconds");
                        }
                        resilience.deadline_secs = Some(secs);
                    }
                    "--max-states" => {
                        resilience.max_states =
                            Some(flag_value("--max-states", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--max-states needs a number".into() }
                            })?)
                    }
                    "--max-units" => {
                        resilience.max_units =
                            Some(flag_value("--max-units", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--max-units needs a number".into() }
                            })?)
                    }
                    "--checkpoint" => {
                        resilience.checkpoint = Some(flag_value("--checkpoint", &mut it)?)
                    }
                    "--checkpoint-every" => {
                        resilience.checkpoint_every =
                            flag_value("--checkpoint-every", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--checkpoint-every needs a number".into() }
                            })?
                    }
                    "--resume" => resilience.resume = Some(flag_value("--resume", &mut it)?),
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(design) = design else { return err("partition: missing <design.xml>") };
            let Some(target) = target else {
                return err("partition: choose --device, --budget or --auto");
            };
            if resilience.resume.is_some() && target == Target::Auto {
                return err("partition: --resume cannot be combined with --auto (a checkpoint is \
                     bound to one concrete budget)");
            }
            Ok(Command::Partition {
                design,
                target,
                strategy,
                no_static,
                pessimistic,
                xml_out,
                library,
                weights,
                threads,
                resilience,
                obs,
            })
        }
        "flow" => {
            let mut design = None;
            let mut device = None;
            let mut out = None;
            let mut store = None;
            let mut store_fault_rate = 0.0f64;
            let mut store_fault_seed = 1u64;
            let mut threads = 0usize;
            let mut deadline_secs = None;
            let mut obs = ObsArgs::default();
            while let Some(a) = it.next() {
                if obs.parse_flag(a.as_str(), &mut it, "--profile-out")? {
                    continue;
                }
                match a.as_str() {
                    "--device" => device = Some(flag_value("--device", &mut it)?),
                    "--out" => out = Some(flag_value("--out", &mut it)?),
                    "--store" => store = Some(flag_value("--store", &mut it)?),
                    "--store-fault-rate" => {
                        let rate: f64 =
                            flag_value("--store-fault-rate", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--store-fault-rate needs a number".into() }
                            })?;
                        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                            return err("--store-fault-rate must be in [0, 1)");
                        }
                        store_fault_rate = rate;
                    }
                    "--store-fault-seed" => {
                        store_fault_seed =
                            flag_value("--store-fault-seed", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--store-fault-seed needs an integer".into() }
                            })?
                    }
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    "--deadline" => {
                        let secs: f64 = flag_value("--deadline", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--deadline needs seconds".into() })?;
                        if !secs.is_finite() || secs < 0.0 {
                            return err("--deadline must be a non-negative number of seconds");
                        }
                        deadline_secs = Some(secs);
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, device) {
                (Some(design), Some(device)) if out.is_some() || store.is_some() => {
                    Ok(Command::Flow {
                        design,
                        device,
                        out,
                        store,
                        store_fault_rate,
                        store_fault_seed,
                        threads,
                        deadline_secs,
                        obs,
                    })
                }
                _ => err("flow: need <design.xml> --device NAME and --out DIR and/or --store DIR"),
            }
        }
        "floorplan" => {
            let mut design = None;
            let mut target = None;
            let mut threads = 0usize;
            let mut max_aspect = None;
            let mut obstacles = None;
            let mut render = false;
            let mut first_fit = false;
            let mut max_retries = 3usize;
            let mut library = None;
            let mut obs = ObsArgs::default();
            while let Some(a) = it.next() {
                if obs.parse_flag(a.as_str(), &mut it, "--profile-out")? {
                    continue;
                }
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--auto" => {
                        return err("floorplan: --auto is not supported (a floorplan needs one \
                             concrete fabric; pick --device or --budget)");
                    }
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    "--max-aspect" => {
                        let a: f64 =
                            flag_value("--max-aspect", &mut it)?.parse().map_err(|_| CliError {
                                message: "--max-aspect needs a number".into(),
                            })?;
                        if !a.is_finite() || a < 1.0 {
                            return err("--max-aspect must be a finite ratio >= 1");
                        }
                        max_aspect = Some(a);
                    }
                    "--obstacles" => obstacles = Some(flag_value("--obstacles", &mut it)?),
                    "--render" => render = true,
                    "--first-fit" => first_fit = true,
                    "--max-retries" => {
                        max_retries =
                            flag_value("--max-retries", &mut it)?.parse().map_err(|_| CliError {
                                message: "--max-retries needs a number".into(),
                            })?
                    }
                    "--library" => library = Some(flag_value("--library", &mut it)?),
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(design) = design else { return err("floorplan: missing <design.xml>") };
            let Some(target) = target else {
                return err("floorplan: choose --device NAME or --budget CLB,BRAM,DSP");
            };
            Ok(Command::Floorplan {
                design,
                target,
                threads,
                max_aspect,
                obstacles,
                render,
                first_fit,
                max_retries,
                library,
                obs,
            })
        }
        "generate" => {
            let mut count = 10usize;
            let mut seed = 1u64;
            let mut out = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--count" => {
                        count = flag_value("--count", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--count needs a number".into() })?
                    }
                    "--seed" => {
                        seed = flag_value("--seed", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--seed needs a number".into() })?
                    }
                    "--out" => out = Some(flag_value("--out", &mut it)?),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(out) = out else { return err("generate: missing --out DIR") };
            Ok(Command::Generate { count, seed, out })
        }
        "simulate" => {
            let mut design = None;
            let mut target = None;
            let mut walks = 32usize;
            let mut len = 128usize;
            let mut profile_out = None;
            let mut fault_rate = 0.0f64;
            let mut fault_seed = 0xFA17u64;
            let mut max_retries = None;
            let mut safe_config = None;
            let mut threads = 0usize;
            let mut obs = ObsArgs::default();
            while let Some(a) = it.next() {
                if obs.parse_flag(a.as_str(), &mut it, "--flame-out")? {
                    continue;
                }
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--walks" => {
                        walks = flag_value("--walks", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--walks needs a number".into() })?
                    }
                    "--len" => {
                        len = flag_value("--len", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--len needs a number".into() })?
                    }
                    "--profile-out" => profile_out = Some(flag_value("--profile-out", &mut it)?),
                    "--fault-rate" => {
                        fault_rate =
                            flag_value("--fault-rate", &mut it)?.parse().map_err(|_| CliError {
                                message: "--fault-rate needs a number".into(),
                            })?;
                        if !(0.0..1.0).contains(&fault_rate) {
                            return err(format!("--fault-rate {fault_rate} must be in [0, 1)"));
                        }
                    }
                    "--fault-seed" => {
                        fault_seed = flag_value("--fault-seed", &mut it)?.parse().map_err(|_| {
                            CliError { message: "--fault-seed needs a number".into() }
                        })?
                    }
                    "--max-retries" => {
                        max_retries =
                            Some(flag_value("--max-retries", &mut it)?.parse().map_err(|_| {
                                CliError { message: "--max-retries needs a number".into() }
                            })?)
                    }
                    "--safe-config" => safe_config = Some(flag_value("--safe-config", &mut it)?),
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(design) = design else { return err("simulate: missing <design.xml>") };
            let Some(target) = target else {
                return err("simulate: choose --device or --budget");
            };
            Ok(Command::Simulate {
                design,
                target,
                walks,
                len,
                profile_out,
                fault_rate,
                fault_seed,
                max_retries,
                safe_config,
                threads,
                obs,
            })
        }
        "metrics" => {
            let mut design = None;
            let mut target = None;
            let mut threads = 0usize;
            let mut prom = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--format" => {
                        prom = match flag_value("--format", &mut it)?.as_str() {
                            "json" => false,
                            "prom" => true,
                            other => return err(format!("unknown metrics format '{other}'")),
                        }
                    }
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(design) = design else { return err("metrics: missing <design.xml>") };
            let Some(target) = target else {
                return err("metrics: choose --device or --budget");
            };
            Ok(Command::Metrics { design, target, threads, prom })
        }
        "info" => match it.next() {
            Some(design) if !design.starts_with('-') => {
                Ok(Command::Info { design: design.clone() })
            }
            _ => err("info: missing <design.xml>"),
        },
        "pareto" => {
            let mut design = None;
            let mut target = None;
            let mut threads = 0usize;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--threads" => {
                        threads = flag_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--threads needs a number".into() })?
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, target) {
                (Some(design), Some(target)) => Ok(Command::Pareto { design, target, threads }),
                _ => err("pareto: need <design.xml> and --device or --budget"),
            }
        }
        "lint" => {
            let mut design = None;
            let mut target = None;
            let mut library = None;
            let mut json = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--library" => library = Some(flag_value("--library", &mut it)?),
                    "--json" => json = true,
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            let Some(design) = design else { return err("lint: missing <design.xml>") };
            Ok(Command::Lint { design, target, library, json })
        }
        "check" => {
            let mut design = None;
            let mut scheme = None;
            let mut target = None;
            let mut library = None;
            let mut pessimistic = false;
            let mut json = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--device" => target = Some(Target::Device(flag_value("--device", &mut it)?)),
                    "--budget" => {
                        target =
                            Some(Target::Budget(parse_budget(&flag_value("--budget", &mut it)?)?))
                    }
                    "--library" => library = Some(flag_value("--library", &mut it)?),
                    "--pessimistic" => pessimistic = true,
                    "--json" => json = true,
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    _ if scheme.is_none() && !a.starts_with('-') => scheme = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, scheme) {
                (Some(design), Some(scheme)) => {
                    Ok(Command::Check { design, scheme, target, library, pessimistic, json })
                }
                _ => err("check: need <design.xml> <scheme.xml>"),
            }
        }
        "certify" => {
            let mut design = None;
            let mut scheme = None;
            let mut deadline = None;
            let mut blacklist_depth = None;
            let mut safe_config = None;
            let mut json = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--deadline" => {
                        let secs: f64 = flag_value("--deadline", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--deadline needs seconds".into() })?;
                        if !secs.is_finite() || secs < 0.0 {
                            return err("--deadline must be a non-negative number of seconds");
                        }
                        deadline = Some(secs);
                    }
                    "--blacklist-depth" => {
                        blacklist_depth =
                            Some(flag_value("--blacklist-depth", &mut it)?.parse().map_err(
                                |_| CliError { message: "--blacklist-depth needs a number".into() },
                            )?);
                    }
                    "--safe-config" => safe_config = Some(flag_value("--safe-config", &mut it)?),
                    "--format" => {
                        json = match flag_value("--format", &mut it)?.as_str() {
                            "json" => true,
                            "text" => false,
                            other => {
                                return err(format!(
                                    "certify: unknown format '{other}' (json|text)"
                                ))
                            }
                        };
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    _ if scheme.is_none() && !a.starts_with('-') => scheme = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, scheme) {
                (Some(design), Some(scheme)) => Ok(Command::Certify {
                    design,
                    scheme,
                    deadline,
                    blacklist_depth,
                    safe_config,
                    json,
                }),
                _ => err("certify: need <design.xml> <scheme.xml>"),
            }
        }
        "serve" => {
            let mut design = None;
            let mut scheme = None;
            let mut arrivals = 500.0f64;
            let mut duration_secs = 0.1f64;
            let mut policy = OverloadPolicy::RejectNew;
            let mut seed = 0x5EEDu64;
            let mut queue_capacity = 16usize;
            let mut fault_rate = 0.0f64;
            let mut fault_seed = 0xFA17u64;
            let mut obs = ObsArgs::default();
            while let Some(a) = it.next() {
                if obs.parse_flag(a.as_str(), &mut it, "--profile-out")? {
                    continue;
                }
                match a.as_str() {
                    "--arrivals" => {
                        arrivals = flag_value("--arrivals", &mut it)?.parse().map_err(|_| {
                            CliError { message: "--arrivals needs arrivals per second".into() }
                        })?;
                        if !arrivals.is_finite() || arrivals <= 0.0 {
                            return err("--arrivals must be a positive rate");
                        }
                    }
                    "--duration" => {
                        duration_secs = flag_value("--duration", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--duration needs seconds".into() })?;
                        if !duration_secs.is_finite() || duration_secs <= 0.0 {
                            return err("--duration must be a positive number of seconds");
                        }
                    }
                    "--policy" => {
                        let name = flag_value("--policy", &mut it)?;
                        policy = OverloadPolicy::parse(&name).ok_or_else(|| CliError {
                            message: format!(
                                "serve: unknown policy '{name}' \
                                 (reject-new|drop-oldest|deadline-aware)"
                            ),
                        })?;
                    }
                    "--seed" => {
                        seed = flag_value("--seed", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--seed needs a number".into() })?
                    }
                    "--queue" => {
                        queue_capacity = flag_value("--queue", &mut it)?
                            .parse()
                            .map_err(|_| CliError { message: "--queue needs a capacity".into() })?;
                        if queue_capacity == 0 {
                            return err("--queue must be at least 1");
                        }
                    }
                    "--fault-rate" => {
                        fault_rate =
                            flag_value("--fault-rate", &mut it)?.parse().map_err(|_| CliError {
                                message: "--fault-rate needs a number".into(),
                            })?;
                        if !(0.0..=1.0).contains(&fault_rate) {
                            return err("--fault-rate must be within [0, 1]");
                        }
                    }
                    "--fault-seed" => {
                        fault_seed = flag_value("--fault-seed", &mut it)?.parse().map_err(|_| {
                            CliError { message: "--fault-seed needs a number".into() }
                        })?
                    }
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    _ if scheme.is_none() && !a.starts_with('-') => scheme = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, scheme) {
                (Some(design), Some(scheme)) => Ok(Command::Serve {
                    design,
                    scheme,
                    arrivals,
                    duration_secs,
                    policy,
                    seed,
                    queue_capacity,
                    fault_rate,
                    fault_seed,
                    obs,
                }),
                _ => err("serve: need <design.xml> <scheme.xml>"),
            }
        }
        "report" => {
            let mut design = None;
            let mut scheme = None;
            let mut simulate = false;
            for a in it {
                match a.as_str() {
                    "--simulate" => simulate = true,
                    _ if design.is_none() && !a.starts_with('-') => design = Some(a.clone()),
                    _ if scheme.is_none() && !a.starts_with('-') => scheme = Some(a.clone()),
                    other => return err(format!("unexpected argument '{other}'")),
                }
            }
            match (design, scheme) {
                (Some(design), Some(scheme)) => Ok(Command::Report { design, scheme, simulate }),
                _ => err("report: need <design.xml> <scheme.xml>"),
            }
        }
        other => err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn load_library(path: &Option<String>, full: bool) -> Result<DeviceLibrary, CliError> {
    match path {
        None => Ok(if full { DeviceLibrary::virtex5_full() } else { DeviceLibrary::virtex5() }),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError { message: format!("cannot read {p}: {e}") })?;
            prpart_xmlio::schema::parse_device_library(&text)
                .map_err(|e| CliError { message: format!("{p}: {e}") })
        }
    }
}

fn load_design(path: &str) -> Result<Design, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError { message: format!("cannot read {path}: {e}") })?;
    // Accepts both entry formats: <design> (pre-synthesised resources)
    // and <design-spec> (op-level, run through the synthesis estimator).
    prpart_flow::parse_design_or_spec(&text)
        .map_err(|e| CliError { message: format!("{path}: {e}") })
}

fn budget_for(target: &Target, library: &DeviceLibrary) -> Result<Option<Resources>, CliError> {
    match target {
        Target::Device(name) => library
            .by_name(name)
            .map(|d| Some(d.capacity))
            .ok_or_else(|| CliError { message: format!("unknown device '{name}'") }),
        Target::Budget(r) => Ok(Some(*r)),
        Target::Auto => Ok(None),
    }
}

/// [`budget_for`] for commands whose parser guarantees a concrete
/// target (no `--auto`): an `Auto` target reaching this point is a
/// typed internal error instead of a panic.
fn concrete_budget_for(target: &Target, library: &DeviceLibrary) -> Result<Resources, CliError> {
    budget_for(target, library)?.ok_or_else(|| CliError {
        message: "internal: this command requires a concrete --device or --budget target".into(),
    })
}

/// Executes a command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, CliError> {
    run_with_cancel(cmd, None)
}

/// Executes a command with an optional cancellation token wired into the
/// long-running searches (the binary connects it to Ctrl-C). A cancelled
/// search is not an error: the partial result is reported with the
/// truncation noted.
pub fn run_with_cancel(cmd: Command, cancel: Option<CancelToken>) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info { design } => {
            let design = load_design(&design)?;
            let mut out = format!("{design}\n\n");
            out.push_str(&prpart_design::design_stats(&design).to_string());
            let issues = design.validate();
            if issues.is_empty() {
                out.push_str("\nno validation findings\n");
            } else {
                out.push_str("\nvalidation findings:\n");
                for i in &issues {
                    let _ = writeln!(out, "  - {i}");
                }
            }
            Ok(out)
        }
        Command::Pareto { design, target, threads } => {
            let library = load_library(&None, false)?;
            let design = load_design(&design)?;
            let budget = concrete_budget_for(&target, &library)?;
            let outcome = Partitioner::new(budget)
                .with_threads(threads)
                .with_auditor(prpart_analysis::auditor(ProofChecker::new().with_budget(budget)))
                .partition(&design)
                .map_err(|e| CliError { message: e.to_string() })?;
            let mut out = String::new();
            let _ = writeln!(out, "{design} | budget {budget}");
            let _ =
                writeln!(out, "time/area Pareto front ({} points):", outcome.pareto_front.len());
            for (i, p) in outcome.pareto_front.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{i}: total {:>10} frames | worst {:>8} frames | {}",
                    p.metrics.total_frames, p.metrics.worst_frames, p.metrics.resources
                );
            }
            Ok(out)
        }
        Command::Floorplan {
            design,
            target,
            threads,
            max_aspect,
            obstacles,
            render,
            first_fit,
            max_retries,
            library,
            obs,
        } => {
            let library = load_library(&library, false)?;
            let design = load_design(&design)?;
            let device = match &target {
                Target::Device(name) => library
                    .by_name(name)
                    .cloned()
                    .ok_or_else(|| CliError { message: format!("unknown device '{name}'") })?,
                // A budget target gets a synthetic 4-row fabric of that
                // capacity (the library's small-device height).
                Target::Budget(r) => Device::new("budget", DeviceFamily::Lx, *r, 4),
                Target::Auto => {
                    return err(
                        "internal: floorplan requires a concrete --device or --budget target",
                    )
                }
            };
            let obstacles = match &obstacles {
                None => Vec::new(),
                Some(path) => load_obstacles(path)?,
            };
            let handle = obs.handle();
            let config = PlannerConfig {
                obstacles,
                max_aspect,
                strategy: if first_fit {
                    PlacerStrategy::FirstFit
                } else {
                    PlacerStrategy::Candidates
                },
                threads,
                obs: handle.clone(),
            };
            let planned = place_with_feedback(
                &design,
                &device,
                |budget| Partitioner::new(budget).with_threads(threads),
                max_retries,
                &config,
            )
            .map_err(|e| CliError { message: e.to_string() })?;
            let scheme = &planned.evaluated.scheme;
            let floorplan = &planned.floorplan;
            let requirements: Vec<TileCounts> =
                (0..scheme.regions.len()).map(|r| scheme.region_tiles(r)).collect();
            let mut out = String::new();
            let _ = writeln!(out, "{design} | device {} ({})", device.name, device.capacity);
            let _ = writeln!(
                out,
                "grid {} columns x {} rows | engine {} | obstacles {}",
                floorplan.geometry.num_columns(),
                floorplan.geometry.rows(),
                if first_fit { "first-fit" } else { "candidates" },
                floorplan.obstacles.len(),
            );
            let _ = writeln!(
                out,
                "scheme: {} region(s), {} static partition(s), {} configuration(s)",
                scheme.regions.len(),
                scheme.static_partitions.len(),
                scheme.num_configurations,
            );
            let _ = writeln!(
                out,
                "search {} | retries {} | placement attempts {} | scheme rank {}",
                planned.search_outcome,
                planned.retries,
                planned.placement_attempts,
                planned.scheme_rank,
            );
            let _ = writeln!(out, "placements:");
            for p in &floorplan.placements {
                let got = p.tiles(&floorplan.geometry).frames();
                let need = requirements.get(p.region).map_or(0, TileCounts::frames);
                let _ = writeln!(
                    out,
                    "  region {:>2}: cols {:>3}..{:<3} rows {:>2}..{:<2} | need {:>6} frames \
                     | got {:>6} | waste {}",
                    p.region,
                    p.cols.start,
                    p.cols.end,
                    p.rows.start,
                    p.rows.end,
                    need,
                    got,
                    got.saturating_sub(need),
                );
            }
            let _ = writeln!(
                out,
                "total waste {} frames | utilisation {:.2}% of {} available frames",
                floorplan.waste_frames(&requirements),
                floorplan.utilisation() * 100.0,
                floorplan.available_frames(),
            );
            if render {
                let _ = writeln!(out, "\n{}", floorplan.render().trim_end());
            }
            write_obs_outputs(&handle, &obs, &mut out)?;
            Ok(out)
        }
        Command::Lint { design, target, library, json } => {
            let library = load_library(&library, false)?;
            let design = load_design(&design)?;
            let budget = match &target {
                None => None,
                Some(t) => budget_for(t, &library)?,
            };
            let report = lint_design(&design, &LintOptions { budget });
            let rendered = if json {
                let mut j = report.render_json();
                j.push('\n');
                j
            } else {
                report.render_text()
            };
            if report.has_errors() {
                Err(CliError { message: rendered })
            } else {
                Ok(rendered)
            }
        }
        Command::Check { design, scheme, target, library, pessimistic, json } => {
            let library = load_library(&library, false)?;
            let design = load_design(&design)?;
            let budget = match &target {
                None => None,
                Some(t) => budget_for(t, &library)?,
            };
            let text = std::fs::read_to_string(&scheme)
                .map_err(|e| CliError { message: format!("cannot read {scheme}: {e}") })?;
            let doc = prpart_xmlio::parse(&text)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            // Deliberately the *raw* loader: a defective report must reach
            // the checker, not be filtered out by loader validation.
            let loaded = prpart_xmlio::schema::raw_scheme_from_xml(&design, &doc)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let claims = prpart_xmlio::schema::claimed_metrics_from_xml(&doc)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let mut checker = ProofChecker::new();
            if let Some(b) = budget {
                checker = checker.with_budget(b);
            }
            if pessimistic {
                checker = checker.with_semantics(TransitionSemantics::Pessimistic);
            }
            let metrics = SchemeMetrics {
                resources: claims.resources,
                total_frames: claims.total_frames,
                worst_frames: claims.worst_frames,
                num_regions: loaded.regions.len(),
                num_static: loaded.static_partitions.len(),
                fits: budget.is_none_or(|b| claims.resources.fits_in(&b)),
            };
            let evaluated = EvaluatedScheme { scheme: loaded, metrics };
            let report = checker.certify(&design, &evaluated);
            let rendered = if json {
                let mut j = report.render_json();
                j.push('\n');
                j
            } else {
                report.render_text()
            };
            if report.is_certified() {
                Ok(rendered)
            } else {
                Err(CliError { message: rendered })
            }
        }
        Command::Certify { design, scheme, deadline, blacklist_depth, safe_config, json } => {
            let design = load_design(&design)?;
            let text = std::fs::read_to_string(&scheme)
                .map_err(|e| CliError { message: format!("cannot read {scheme}: {e}") })?;
            let doc = prpart_xmlio::parse(&text)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            // Like `check`, the *raw* loader: a defective report must
            // reach the certifier, not be filtered out by validation.
            let loaded = prpart_xmlio::schema::raw_scheme_from_xml(&design, &doc)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let mut certifier = TransitionCertifier::new();
            if let Some(secs) = deadline {
                certifier = certifier.with_deadline(std::time::Duration::from_secs_f64(secs));
            }
            if let Some(k) = blacklist_depth {
                certifier = certifier.with_blacklist_depth(k);
            }
            if let Some(name) = &safe_config {
                let idx = design.configurations().iter().position(|c| c.name == *name).ok_or_else(
                    || CliError {
                        message: format!("unknown configuration '{name}' for --safe-config"),
                    },
                )?;
                certifier = certifier.with_safe_config(idx);
            }
            let report = certifier.certify(&design, &loaded);
            let rendered = if json {
                let mut j = report.render_json();
                j.push('\n');
                j
            } else {
                report.render_text()
            };
            if report.is_certified() {
                Ok(rendered)
            } else {
                Err(CliError { message: rendered })
            }
        }
        Command::Serve {
            design,
            scheme,
            arrivals,
            duration_secs,
            policy,
            seed,
            queue_capacity,
            fault_rate,
            fault_seed,
            obs,
        } => {
            let design = load_design(&design)?;
            let text = std::fs::read_to_string(&scheme)
                .map_err(|e| CliError { message: format!("cannot read {scheme}: {e}") })?;
            let doc = prpart_xmlio::parse(&text)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let loaded = prpart_xmlio::schema::scheme_from_xml(&design, &doc)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            // Deadline-aware shedding predicts completion times from the
            // certificate's per-edge bounds, so a scheme that fails the
            // transition certifier cannot be served.
            let report = TransitionCertifier::new().certify(&design, &loaded);
            if !report.is_certified() {
                return Err(CliError { message: report.render_text() });
            }
            let clock = std::sync::Arc::new(prpart_obs::MockClock::new());
            let obs_handle = if obs.active() {
                ObsHandle::with_clock(clock.clone())
            } else {
                ObsHandle::disabled()
            };
            let faults = if fault_rate > 0.0 {
                FaultModel::seeded(fault_rate, fault_seed)
            } else {
                FaultModel::none()
            };
            let manager = ConfigurationManager::with_policy(
                loaded,
                IcapController::with_faults(IcapModel::virtex5(), faults),
                RecoveryPolicy::default(),
            );
            let service_config = ServiceConfig {
                queue_capacity,
                policy,
                certificate: Some(report.certificate),
                ..ServiceConfig::default()
            };
            let mut service = ReconfigService::new(manager, clock, service_config, &obs_handle)
                .map_err(|e| CliError { message: format!("serve: {e}") })?;
            let workload = WorkloadConfig {
                seed,
                arrivals_per_sec: arrivals,
                duration: std::time::Duration::from_secs_f64(duration_secs),
                ..WorkloadConfig::default()
            };
            let schedule = WorkloadGenerator::new(workload).schedule(design.num_configurations());
            let replay = run_replay(&mut service, &schedule);
            let mut out = String::new();
            let _ = writeln!(out, "serve: policy {} | seed {seed}", policy.as_str());
            let _ = writeln!(
                out,
                "offered {} | completed {} | goodput {} ({:.1}/s)",
                replay.offered, replay.completed, replay.goodput, replay.goodput_per_sec
            );
            let _ = writeln!(
                out,
                "shed {} | rejected {} | circuit-open {} | deadline-missed {} | failed {}",
                replay.shed,
                replay.rejected,
                replay.circuit_open,
                replay.deadline_missed,
                replay.failed
            );
            let _ = writeln!(
                out,
                "latency p50 {:?} | p99 {:?} | max {:?} | virtual elapsed {:?}",
                replay.p50_latency, replay.p99_latency, replay.max_latency, replay.virtual_elapsed
            );
            write_obs_outputs(&obs_handle, &obs, &mut out)?;
            Ok(out)
        }
        Command::Report { design, scheme, simulate } => {
            let design = load_design(&design)?;
            let text = std::fs::read_to_string(&scheme)
                .map_err(|e| CliError { message: format!("cannot read {scheme}: {e}") })?;
            let doc = prpart_xmlio::parse(&text)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let loaded = prpart_xmlio::schema::scheme_from_xml(&design, &doc)
                .map_err(|e| CliError { message: format!("{scheme}: {e}") })?;
            let mut out = String::new();
            let _ = writeln!(out, "{design}");
            out.push_str(&loaded.describe(&design));
            let sem = TransitionSemantics::Optimistic;
            let _ = writeln!(
                out,
                "resources: {} | total: {} frames | worst: {} frames",
                loaded.total_resources(design.static_overhead()),
                loaded.total_reconfig_frames(sem),
                loaded.worst_reconfig_frames(sem),
            );
            if simulate {
                let report = run_monte_carlo(
                    &loaded,
                    MonteCarloConfig { walks: 16, walk_len: 64, ..Default::default() },
                );
                let _ = writeln!(
                    out,
                    "monte-carlo: {} frames total | mean {:.0} frames/transition",
                    report.total_frames, report.mean_frames_per_transition
                );
            }
            Ok(out)
        }
        Command::Devices { library, full } => {
            let library = load_library(&library, full)?;
            let mut out = String::new();
            for d in library.devices() {
                let _ = writeln!(out, "{d}");
            }
            Ok(out)
        }
        Command::Partition {
            design,
            target,
            strategy,
            no_static,
            pessimistic,
            xml_out,
            library,
            weights,
            threads,
            resilience,
            obs,
        } => {
            let library = load_library(&library, false)?;
            let design = load_design(&design)?;
            let weights = match weights {
                None => None,
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| CliError { message: format!("cannot read {path}: {e}") })?;
                    Some(
                        prpart_xmlio::schema::parse_weights(&text)
                            .map_err(|e| CliError { message: format!("{path}: {e}") })?,
                    )
                }
            };
            let obs_handle = obs.handle();
            let make = |budget: Resources| {
                let mut p = Partitioner::new(budget)
                    .with_threads(threads)
                    .with_obs(obs_handle.clone())
                    .with_search_budget(resilience.budget(cancel.clone()));
                if let Some(config) = resilience.checkpoint_config() {
                    p = p.with_checkpoint(config);
                }
                if let Some(s) = strategy {
                    p = p.with_strategy(s);
                }
                if no_static {
                    p = p.without_static_promotion();
                }
                let mut checker = ProofChecker::new().with_budget(budget);
                if pessimistic {
                    p = p.with_semantics(TransitionSemantics::Pessimistic);
                    checker = checker.with_semantics(TransitionSemantics::Pessimistic);
                }
                if let Some(w) = &weights {
                    p = p.with_transition_weights(w.clone());
                }
                p.with_auditor(prpart_analysis::auditor(checker))
            };
            let mut out = String::new();
            let best = match budget_for(&target, &library)? {
                Some(budget) => {
                    let partitioner = make(budget);
                    let result = match &resilience.resume {
                        Some(path) => partitioner.resume_from(&design, std::path::Path::new(path)),
                        None => partitioner.partition(&design),
                    }
                    .map_err(|e| CliError { message: e.to_string() })?;
                    let _ = writeln!(
                        out,
                        "{design} | budget {budget} | {} candidate sets, {} states",
                        result.candidate_sets_explored, result.states_evaluated
                    );
                    if let Some(line) = outcome_summary(&result) {
                        let _ = writeln!(out, "{line}");
                    }
                    result.best.ok_or_else(|| CliError {
                        message: if result.search_outcome.is_complete() {
                            "no feasible scheme beyond a single region; try a larger device".into()
                        } else {
                            format!(
                                "search {} before any feasible scheme was found; resume from \
                                 a checkpoint or raise the budget",
                                result.search_outcome
                            )
                        },
                    })?
                }
                None => {
                    let choice = select_device(&design, &library, make)
                        .map_err(|e| CliError { message: e.to_string() })?;
                    let _ = writeln!(
                        out,
                        "{design} | selected device {} ({} escalations)",
                        choice.device, choice.escalations
                    );
                    if let Some(line) = outcome_summary(&choice.outcome) {
                        let _ = writeln!(out, "{line}");
                    }
                    choice.outcome.best.ok_or(CliError {
                        message: "no feasible scheme found on any library device".into(),
                    })?
                }
            };
            out.push_str(&scheme_report(&design, &best));
            if let Some(path) = xml_out {
                let xml = prpart_xmlio::schema::scheme_to_xml(&design, &best).to_string_pretty();
                std::fs::write(&path, xml)
                    .map_err(|e| CliError { message: format!("cannot write {path}: {e}") })?;
                let _ = writeln!(out, "report written to {path}");
            }
            write_obs_outputs(&obs_handle, &obs, &mut out)?;
            Ok(out)
        }
        Command::Flow {
            design,
            device,
            out,
            store,
            store_fault_rate,
            store_fault_seed,
            threads,
            deadline_secs,
            obs,
        } => {
            let library = load_library(&None, false)?;
            let design = load_design(&design)?;
            let device = library
                .by_name(&device)
                .ok_or_else(|| CliError { message: format!("unknown device '{device}'") })?
                .clone();
            let mut search_budget = SearchBudget::new();
            if let Some(secs) = deadline_secs {
                search_budget =
                    search_budget.with_deadline(std::time::Duration::from_secs_f64(secs));
            }
            if let Some(token) = cancel.clone() {
                search_budget = search_budget.with_cancel(token);
            }
            let obs_handle = obs.handle();
            let pipeline = FlowPipeline::new(device)
                .with_threads(threads)
                .with_obs(obs_handle.clone())
                .with_search_budget(search_budget);
            let mut store_summary = None;
            let artifacts = match &store {
                Some(dir) => {
                    let mut st = ArtifactStore::open(std::path::Path::new(dir))
                        .map_err(|e| CliError { message: e.to_string() })?;
                    if store_fault_rate > 0.0 {
                        st = st.with_faults(StoreFaultModel::seeded(
                            store_fault_rate,
                            store_fault_seed,
                        ));
                    }
                    let artifacts = pipeline
                        .run_with_store(design, &mut st)
                        .map_err(|e| CliError { message: e.to_string() })?;
                    let s = st.stats();
                    store_summary = Some(format!(
                        "store {dir}/: {} writes ({} retried), {} reused, {} regenerated, {} quarantined",
                        s.writes, s.write_retries, s.reused, s.regenerated, s.quarantined,
                    ));
                    artifacts
                }
                None => pipeline.run(design).map_err(|e| CliError { message: e.to_string() })?,
            };
            if let Some(out) = &out {
                let dir = std::path::Path::new(out);
                std::fs::create_dir_all(dir)
                    .map_err(|e| CliError { message: format!("cannot create {out}: {e}") })?;
                std::fs::write(dir.join("constraints.ucf"), &artifacts.ucf)
                    .map_err(|e| CliError { message: e.to_string() })?;
                for w in &artifacts.wrappers {
                    std::fs::write(dir.join(format!("{}.v", w.module_name)), &w.source)
                        .map_err(|e| CliError { message: e.to_string() })?;
                }
                for bs in &artifacts.partial_bitstreams {
                    std::fs::write(
                        dir.join(format!("rr{}_p{}.bit", bs.region + 1, bs.partition)),
                        &bs.data,
                    )
                    .map_err(|e| CliError { message: e.to_string() })?;
                }
                std::fs::write(dir.join("full.bit"), &artifacts.full_bitstream)
                    .map_err(|e| CliError { message: e.to_string() })?;
            }
            let mut summary = String::new();
            let _ = writeln!(
                summary,
                "flow complete: {} regions, {} wrappers, {} partial bitstreams ({} bytes), {} floorplan retries",
                artifacts.evaluated.metrics.num_regions,
                artifacts.wrappers.len(),
                artifacts.partial_bitstreams.len(),
                artifacts.total_partial_bytes(),
                artifacts.floorplan_retries,
            );
            if !artifacts.search_outcome.is_complete() {
                let _ = writeln!(
                    summary,
                    "search {}: certified best-so-far scheme",
                    artifacts.search_outcome
                );
            }
            if let Some(line) = store_summary {
                let _ = writeln!(summary, "{line}");
            }
            if let Some(out) = &out {
                let _ = writeln!(summary, "artefacts in {out}/");
            }
            write_obs_outputs(&obs_handle, &obs, &mut summary)?;
            summary.push_str(&artifacts.floorplan.render());
            summary.push('\n');
            Ok(summary)
        }
        Command::Generate { count, seed, out } => {
            let dir = std::path::Path::new(&out);
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError { message: format!("cannot create {out}: {e}") })?;
            let corpus = generate_corpus(&GeneratorConfig::default(), count, seed);
            for (i, sd) in corpus.iter().enumerate() {
                let path = dir.join(format!("design_{i:04}.xml"));
                std::fs::write(&path, prpart_xmlio::render_design(&sd.design))
                    .map_err(|e| CliError { message: e.to_string() })?;
            }
            Ok(format!("wrote {count} designs to {out}/\n"))
        }
        Command::Simulate {
            design,
            target,
            walks,
            len,
            profile_out,
            fault_rate,
            fault_seed,
            max_retries,
            safe_config,
            threads,
            obs,
        } => {
            let library = load_library(&None, false)?;
            let design = load_design(&design)?;
            let budget = concrete_budget_for(&target, &library)?;
            let obs_handle = obs.handle();
            let best = Partitioner::new(budget)
                .with_threads(threads)
                .with_obs(obs_handle.clone())
                .with_auditor(prpart_analysis::auditor(ProofChecker::new().with_budget(budget)))
                .partition(&design)
                .map_err(|e| CliError { message: e.to_string() })?
                .best
                .ok_or(CliError { message: "no feasible scheme".into() })?;
            let safe_idx = match &safe_config {
                None => None,
                Some(name) => {
                    Some(design.configurations().iter().position(|c| c.name == *name).ok_or_else(
                        || CliError {
                            message: format!("unknown configuration '{name}' for --safe-config"),
                        },
                    )?)
                }
            };
            let mut policy = RecoveryPolicy::default();
            if let Some(k) = max_retries {
                policy.max_retries = k;
            }
            policy.safe_config = safe_idx;
            let report = run_monte_carlo_observed(
                &best.scheme,
                MonteCarloConfig {
                    walks,
                    walk_len: len,
                    fault_rate,
                    fault_seed,
                    policy,
                    ..Default::default()
                },
                &obs_handle,
            );
            let mut out = String::new();
            let _ = writeln!(out, "{design}");
            let _ = writeln!(
                out,
                "scheme: {} regions, {} static partitions",
                best.metrics.num_regions, best.metrics.num_static
            );
            let _ = writeln!(
                out,
                "monte-carlo: {walks} walks x {len} transitions\n  total {} frames | mean {:.0} frames/transition | worst single hop {} frames\n  simulated reconfiguration time {:?}",
                report.total_frames,
                report.mean_frames_per_transition,
                report.worst_frames,
                report.total_time,
            );
            if fault_rate > 0.0 {
                let _ = writeln!(
                    out,
                    "reliability: availability {:.4} | {} faults | {} retries | {} failed transitions | {} scrubs | MTTR {:?}",
                    report.availability,
                    report.telemetry.faults,
                    report.telemetry.retries,
                    report.telemetry.transitions_failed,
                    report.telemetry.scrubs,
                    report.mean_time_to_recovery,
                );
            }
            if let Some(path) = profile_out {
                // Profile the same uniform workload the Monte-Carlo used
                // and write the estimated weights for `partition
                // --weights`.
                let mut env = prpart_runtime::UniformEnv::new(design.num_configurations(), 0x5EED);
                let weights = prpart_runtime::estimate_weights(
                    &mut env,
                    design.num_configurations(),
                    walks,
                    len,
                );
                std::fs::write(
                    &path,
                    prpart_xmlio::schema::weights_to_xml(&weights).to_string_pretty(),
                )
                .map_err(|e| CliError { message: format!("cannot write {path}: {e}") })?;
                let _ = writeln!(out, "estimated transition weights written to {path}");
            }
            write_obs_outputs(&obs_handle, &obs, &mut out)?;
            Ok(out)
        }
        Command::Metrics { design, target, threads, prom } => {
            let library = load_library(&None, false)?;
            let design = load_design(&design)?;
            let budget = concrete_budget_for(&target, &library)?;
            let obs = ObsHandle::enabled();
            Partitioner::new(budget)
                .with_threads(threads)
                .with_obs(obs.clone())
                .with_auditor(prpart_analysis::auditor(ProofChecker::new().with_budget(budget)))
                .partition(&design)
                .map_err(|e| CliError { message: e.to_string() })?;
            let mut out = render_metrics(&obs, prom)?;
            if !out.ends_with('\n') {
                out.push('\n');
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_partition_variants() {
        let c = parse_args(&s(&["partition", "d.xml", "--auto"])).unwrap();
        assert!(matches!(c, Command::Partition { target: Target::Auto, .. }));
        let c =
            parse_args(&s(&["partition", "d.xml", "--budget", "100,2,3", "--no-static"])).unwrap();
        match c {
            Command::Partition { target: Target::Budget(b), no_static, .. } => {
                assert_eq!(b, Resources::new(100, 2, 3));
                assert!(no_static);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&s(&["partition", "d.xml", "--device", "SX70T", "--strategy", "beam"]))
            .unwrap();
        assert!(matches!(
            c,
            Command::Partition { strategy: Some(SearchStrategy::Beam { .. }), .. }
        ));
    }

    #[test]
    fn parses_threads_flag() {
        // Default is 0 (auto) everywhere the flag is accepted.
        let c = parse_args(&s(&["partition", "d.xml", "--auto"])).unwrap();
        assert!(matches!(c, Command::Partition { threads: 0, .. }));
        let c = parse_args(&s(&["partition", "d.xml", "--auto", "--threads", "4"])).unwrap();
        assert!(matches!(c, Command::Partition { threads: 4, .. }));
        let c =
            parse_args(&s(&["pareto", "d.xml", "--device", "SX70T", "--threads", "2"])).unwrap();
        assert!(matches!(c, Command::Pareto { threads: 2, .. }));
        let c =
            parse_args(&s(&["flow", "d.xml", "--device", "SX70T", "--out", "o", "--threads", "8"]))
                .unwrap();
        assert!(matches!(c, Command::Flow { threads: 8, .. }));
        let c =
            parse_args(&s(&["simulate", "d.xml", "--device", "SX70T", "--threads", "1"])).unwrap();
        assert!(matches!(c, Command::Simulate { threads: 1, .. }));
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--threads", "many"])).is_err());
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--threads"])).is_err());
    }

    #[test]
    fn truncated_partition_checkpoints_and_resume_matches_the_full_run() {
        let dir = std::env::temp_dir().join("prpart-cli-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml").to_string_lossy().into_owned();
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let checkpoint = dir.join("abc.checkpoint").to_string_lossy().into_owned();
        let target = Target::Budget(Resources::new(1100, 20, 24));
        let base = |resilience: ResilienceArgs| Command::Partition {
            design: design_path.clone(),
            target: target.clone(),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: None,
            library: None,
            weights: None,
            threads: 1,
            resilience,
            obs: Default::default(),
        };

        let full = run(base(ResilienceArgs::default())).unwrap();

        let truncated = run(base(ResilienceArgs {
            max_units: Some(1),
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every: 1,
            ..Default::default()
        }))
        .unwrap();
        assert!(truncated.contains("budget-exhausted"), "{truncated}");
        assert!(truncated.contains("best-so-far"), "{truncated}");

        let resumed =
            run(base(ResilienceArgs { resume: Some(checkpoint.clone()), ..Default::default() }))
                .unwrap();
        // A resumed run that completes the sweep is byte-identical to an
        // uninterrupted one — replayed units leave no trace in the report.
        assert_eq!(resumed, full);
    }

    #[test]
    fn parses_resilience_flags() {
        let c = parse_args(&s(&[
            "partition",
            "d.xml",
            "--device",
            "SX70T",
            "--deadline",
            "2.5",
            "--max-states",
            "5000",
            "--max-units",
            "3",
            "--checkpoint",
            "cp.txt",
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        match c {
            Command::Partition { resilience, .. } => {
                assert_eq!(resilience.deadline_secs, Some(2.5));
                assert_eq!(resilience.max_states, Some(5000));
                assert_eq!(resilience.max_units, Some(3));
                assert_eq!(resilience.checkpoint.as_deref(), Some("cp.txt"));
                assert_eq!(resilience.checkpoint_every, 2);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&s(&["partition", "d.xml", "--device", "SX70T", "--resume", "cp.txt"]))
            .unwrap();
        assert!(matches!(
            c,
            Command::Partition { ref resilience, .. } if resilience.resume.as_deref() == Some("cp.txt")
        ));
        let c = parse_args(&s(&[
            "flow",
            "d.xml",
            "--device",
            "SX70T",
            "--out",
            "o",
            "--deadline",
            "9",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Flow { deadline_secs: Some(d), .. } if d == 9.0));

        // Invalid values and combinations are clean parse errors.
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--deadline", "-1"])).is_err());
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--deadline", "NaN"])).is_err());
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--max-states", "x"])).is_err());
        let err =
            parse_args(&s(&["partition", "d.xml", "--auto", "--resume", "cp.txt"])).unwrap_err();
        assert!(err.message.contains("--auto"), "{err:?}");
    }

    #[test]
    fn parses_store_flags() {
        let c = parse_args(&s(&[
            "flow",
            "d.xml",
            "--device",
            "LX30",
            "--store",
            "st",
            "--store-fault-rate",
            "0.25",
            "--store-fault-seed",
            "7",
        ]))
        .unwrap();
        match c {
            Command::Flow { out, store, store_fault_rate, store_fault_seed, .. } => {
                assert_eq!(out, None, "--out is optional with --store");
                assert_eq!(store.as_deref(), Some("st"));
                assert_eq!(store_fault_rate, 0.25);
                assert_eq!(store_fault_seed, 7);
            }
            other => panic!("{other:?}"),
        }
        // --out and --store can coexist (plain copies plus the store).
        let c =
            parse_args(&s(&["flow", "d.xml", "--device", "LX30", "--out", "o", "--store", "st"]))
                .unwrap();
        assert!(
            matches!(c, Command::Flow { ref out, ref store, .. } if out.is_some() && store.is_some())
        );
        // Rate outside [0, 1) and a flow with no destination are clean errors.
        assert!(parse_args(&s(&[
            "flow",
            "d.xml",
            "--device",
            "LX30",
            "--store",
            "st",
            "--store-fault-rate",
            "1.0",
        ]))
        .is_err());
        assert!(
            parse_args(&s(&["flow", "d.xml", "--device", "LX30"])).is_err(),
            "need --out or --store"
        );
    }

    #[test]
    fn flow_through_store_commits_and_resumes() {
        let dir = std::env::temp_dir().join(format!("prpart-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let path = dir.join("abc.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let store = dir.join("store").to_string_lossy().into_owned();
        let cmd = || Command::Flow {
            design: path.to_string_lossy().into_owned(),
            device: "LX30".into(),
            out: None,
            store: Some(store.clone()),
            store_fault_rate: 0.0,
            store_fault_seed: 1,
            threads: 1,
            deadline_secs: None,
            obs: Default::default(),
        };
        let first = run(cmd()).unwrap();
        assert!(first.contains("store "), "{first}");
        assert!(first.contains("0 reused"), "{first}");
        assert!(std::path::Path::new(&store).join("manifest").exists());
        // A rerun over the committed store regenerates nothing.
        let second = run(cmd()).unwrap();
        assert!(second.contains("0 regenerated"), "{second}");
        assert!(second.contains("flow complete"), "{second}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["partition", "d.xml"])).is_err(), "no target");
        assert!(parse_args(&s(&["partition", "--auto"])).is_err(), "no design");
        assert!(parse_args(&s(&["partition", "d.xml", "--budget", "1,2"])).is_err());
        assert!(parse_args(&s(&["partition", "d.xml", "--budget", "a,b,c"])).is_err());
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["flow", "d.xml"])).is_err(), "flow needs device+out");
    }

    #[test]
    fn help_and_devices() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&s(&["help"])).unwrap(), Command::Help);
        let out = run(Command::Devices { library: None, full: false }).unwrap();
        assert!(out.contains("LX20T") && out.contains("FX200T"));
        let out = run(Command::Devices { library: None, full: true }).unwrap();
        assert!(out.contains("SX240T") && out.contains("FX70T"));
        let out = run(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn partition_and_simulate_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("prpart-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let path = dir.join("video.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let out = run(Command::Partition {
            design: path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: Some(dir.join("report.xml").to_string_lossy().into_owned()),
            library: None,
            weights: None,
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        assert!(out.contains("PRR1"), "{out}");
        assert!(dir.join("report.xml").exists());

        let out = run(Command::Simulate {
            design: path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            walks: 4,
            len: 16,
            profile_out: Some(dir.join("weights.xml").to_string_lossy().into_owned()),
            fault_rate: 0.0,
            fault_seed: 0xFA17,
            max_retries: None,
            safe_config: None,
            threads: 0,
            obs: Default::default(),
        })
        .unwrap();
        assert!(out.contains("monte-carlo"), "{out}");
        assert!(
            !out.contains("reliability:"),
            "fault-free simulate must keep the legacy output: {out}"
        );
        // The emitted weights parse back and have the right dimension.
        let wtext = std::fs::read_to_string(dir.join("weights.xml")).unwrap();
        let w = prpart_xmlio::schema::parse_weights(&wtext).unwrap();
        assert_eq!(w.num_configurations(), 8);
    }

    #[test]
    fn parses_simulate_fault_flags() {
        let c = parse_args(&s(&["simulate", "d.xml", "--device", "SX70T"])).unwrap();
        match c {
            Command::Simulate { fault_rate, fault_seed, max_retries, safe_config, .. } => {
                assert_eq!(fault_rate, 0.0);
                assert_eq!(fault_seed, 0xFA17);
                assert_eq!(max_retries, None);
                assert_eq!(safe_config, None);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&s(&[
            "simulate",
            "d.xml",
            "--device",
            "SX70T",
            "--fault-rate",
            "0.1",
            "--fault-seed",
            "7",
            "--max-retries",
            "5",
            "--safe-config",
            "c1",
        ]))
        .unwrap();
        match c {
            Command::Simulate { fault_rate, fault_seed, max_retries, safe_config, .. } => {
                assert_eq!(fault_rate, 0.1);
                assert_eq!(fault_seed, 7);
                assert_eq!(max_retries, Some(5));
                assert_eq!(safe_config.as_deref(), Some("c1"));
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_args(&s(&["simulate", "d.xml", "--device", "X", "--fault-rate", "1.5"])).is_err(),
            "rates outside [0, 1) are rejected"
        );
        assert!(parse_args(&s(&["simulate", "d.xml", "--device", "X", "--fault-rate", "-0.1"]))
            .is_err());
    }

    #[test]
    fn simulate_with_faults_reports_reliability() {
        let dir = std::env::temp_dir().join("prpart-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let path = dir.join("video.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let safe_name = design.configurations()[0].name.clone();
        let out = run(Command::Simulate {
            design: path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            walks: 4,
            len: 32,
            profile_out: None,
            fault_rate: 0.2,
            fault_seed: 42,
            max_retries: Some(4),
            safe_config: Some(safe_name),
            threads: 0,
            obs: Default::default(),
        })
        .unwrap();
        assert!(out.contains("reliability:"), "{out}");
        assert!(out.contains("availability"), "{out}");
        // An unknown safe configuration is a clean CLI error.
        let err = run(Command::Simulate {
            design: path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            walks: 1,
            len: 4,
            profile_out: None,
            fault_rate: 0.1,
            fault_seed: 1,
            max_retries: None,
            safe_config: Some("no-such-config".into()),
            threads: 0,
            obs: Default::default(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("no-such-config"), "{err}");
    }

    #[test]
    fn custom_library_and_weights_files_work() {
        let dir = std::env::temp_dir().join("prpart-cli-lib");
        std::fs::create_dir_all(&dir).unwrap();
        // A one-device custom library.
        let lib_path = dir.join("lib.xml");
        std::fs::write(
            &lib_path,
            "<devices><device name='MY100' family='LX' clb='20000' bram='200' dsp='200' rows='8'/></devices>",
        )
        .unwrap();
        let out = run(Command::Devices {
            library: Some(lib_path.to_string_lossy().into_owned()),
            full: false,
        })
        .unwrap();
        assert!(out.contains("MY100"), "{out}");

        // Weighted partitioning through files.
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let design_path = dir.join("video.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let mut w = prpart_core::TransitionWeights::uniform(design.num_configurations());
        w.set(0, 3, 40.0);
        let weights_path = dir.join("weights.xml");
        std::fs::write(&weights_path, prpart_xmlio::schema::weights_to_xml(&w).to_string_pretty())
            .unwrap();
        let out = run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Device("MY100".into()),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: None,
            library: Some(lib_path.to_string_lossy().into_owned()),
            weights: Some(weights_path.to_string_lossy().into_owned()),
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        assert!(out.contains("PRR1"), "{out}");

        // A weights file with the wrong dimension is reported cleanly.
        let mut bad = prpart_core::TransitionWeights::uniform(3);
        bad.set(0, 1, 2.0);
        let bad_path = dir.join("bad_weights.xml");
        std::fs::write(&bad_path, prpart_xmlio::schema::weights_to_xml(&bad).to_string_pretty())
            .unwrap();
        let err = run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Device("MY100".into()),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: None,
            library: Some(lib_path.to_string_lossy().into_owned()),
            weights: Some(bad_path.to_string_lossy().into_owned()),
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("weights cover"), "{err}");
    }

    #[test]
    fn info_command_summarises_designs() {
        let dir = std::env::temp_dir().join("prpart-cli-info");
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let path = dir.join("video.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let out = run(Command::Info { design: path.to_string_lossy().into_owned() }).unwrap();
        assert!(out.contains("largest configuration"), "{out}");
        assert!(out.contains("validation findings"), "{out}");
        assert!(out.contains("Recovery.None"), "unused mode should be flagged: {out}");
    }

    #[test]
    fn pareto_command_prints_the_front() {
        let dir = std::env::temp_dir().join("prpart-cli-pareto");
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let path = dir.join("video.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let out = run(Command::Pareto {
            design: path.to_string_lossy().into_owned(),
            target: Target::Budget(prpart_design::corpus::VIDEO_RECEIVER_BUDGET),
            threads: 0,
        })
        .unwrap();
        assert!(out.contains("Pareto front"), "{out}");
        assert!(out.contains("#0:"), "{out}");
    }

    #[test]
    fn report_reloads_saved_schemes() {
        let dir = std::env::temp_dir().join("prpart-cli-report");
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let design_path = dir.join("video.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let scheme_path = dir.join("scheme.xml");
        run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: Some(scheme_path.to_string_lossy().into_owned()),
            library: None,
            weights: None,
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        let out = run(Command::Report {
            design: design_path.to_string_lossy().into_owned(),
            scheme: scheme_path.to_string_lossy().into_owned(),
            simulate: true,
        })
        .unwrap();
        assert!(out.contains("PRR1"), "{out}");
        assert!(out.contains("monte-carlo"), "{out}");
        // Mismatched design is rejected.
        let other = prpart_design::corpus::abc_example();
        let other_path = dir.join("abc.xml");
        std::fs::write(&other_path, prpart_xmlio::render_design(&other)).unwrap();
        let err = run(Command::Report {
            design: other_path.to_string_lossy().into_owned(),
            scheme: scheme_path.to_string_lossy().into_owned(),
            simulate: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown mode"), "{err}");
    }

    #[test]
    fn parses_lint_and_check() {
        let c = parse_args(&s(&["lint", "d.xml"])).unwrap();
        assert!(matches!(c, Command::Lint { target: None, json: false, .. }));
        let c = parse_args(&s(&["lint", "d.xml", "--device", "SX70T", "--json"])).unwrap();
        assert!(matches!(c, Command::Lint { target: Some(Target::Device(_)), json: true, .. }));
        assert!(parse_args(&s(&["lint"])).is_err(), "lint needs a design");
        let c = parse_args(&s(&["check", "d.xml", "s.xml", "--budget", "1,2,3"])).unwrap();
        match c {
            Command::Check { design, scheme, target, pessimistic, json, .. } => {
                assert_eq!(design, "d.xml");
                assert_eq!(scheme, "s.xml");
                assert_eq!(target, Some(Target::Budget(Resources::new(1, 2, 3))));
                assert!(!pessimistic && !json);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&s(&["check", "d.xml", "s.xml", "--pessimistic", "--json"])).unwrap();
        assert!(matches!(c, Command::Check { pessimistic: true, json: true, .. }));
        assert!(parse_args(&s(&["check", "d.xml"])).is_err(), "check needs a scheme");
    }

    #[test]
    fn lint_flags_findings_and_sets_exit_status() {
        let dir = std::env::temp_dir().join("prpart-cli-lint");
        std::fs::create_dir_all(&dir).unwrap();
        // The video receiver carries a known unreachable mode
        // (Recovery.None): warnings only, so the command succeeds.
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let path = dir.join("video.xml");
        std::fs::write(&path, prpart_xmlio::render_design(&design)).unwrap();
        let out = run(Command::Lint {
            design: path.to_string_lossy().into_owned(),
            target: None,
            library: None,
            json: false,
        })
        .unwrap();
        assert!(out.contains("PL001"), "{out}");
        assert!(out.contains("Recovery"), "{out}");

        // Against a device too small for a mode, PL005 is an error and
        // the command fails (non-zero exit in main).
        let err = run(Command::Lint {
            design: path.to_string_lossy().into_owned(),
            target: Some(Target::Budget(Resources::new(40, 2, 2))),
            library: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("PL005"), "{err}");

        // JSON mode emits the machine-readable report.
        let out = run(Command::Lint {
            design: path.to_string_lossy().into_owned(),
            target: None,
            library: None,
            json: true,
        })
        .unwrap();
        assert!(out.contains(r#""diagnostics""#), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
    }

    /// The seeded-defect corpus, driven end-to-end through the CLI: a
    /// saved report is mutated in XML and `prpart check` must reject each
    /// mutation with the right rule ID (ISSUE acceptance criterion).
    #[test]
    fn check_certifies_honest_reports_and_rejects_mutations() {
        let dir = std::env::temp_dir().join("prpart-cli-check");
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let scheme_path = dir.join("scheme.xml");
        run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Budget(Resources::new(100_000, 1_000, 1_000)),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: Some(scheme_path.to_string_lossy().into_owned()),
            library: None,
            weights: None,
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        let check = |scheme: &std::path::Path, budget: Option<Resources>| {
            run(Command::Check {
                design: design_path.to_string_lossy().into_owned(),
                scheme: scheme.to_string_lossy().into_owned(),
                target: budget.map(Target::Budget),
                library: None,
                pessimistic: false,
                json: false,
            })
        };
        // The honest report certifies clean.
        let out = check(&scheme_path, Some(Resources::new(100_000, 1_000, 1_000))).unwrap();
        assert!(out.contains("certificate for"), "{out}");
        let honest = std::fs::read_to_string(&scheme_path).unwrap();

        // Defect 1 — uncovered mode: delete a <region> element wholesale.
        let open = honest.find("<region").expect("has regions");
        let close = honest[open..].find("</region>").expect("closed") + open + "</region>".len();
        let mutated = format!("{}{}", &honest[..open], &honest[close..]);
        let p = dir.join("uncovered.xml");
        std::fs::write(&p, mutated).unwrap();
        let err = check(&p, None).unwrap_err();
        assert!(err.to_string().contains("PC001"), "{err}");

        // Defect 2 — incompatible merge: a region holding two partitions
        // that are active in the same configuration (A1+B1 co-occur).
        let merged = honest.replace(
            "</partitioning>",
            "<region><partition weight=\"1\">\
             <use module=\"A\" mode=\"A1\"/></partition>\
             <partition weight=\"1\"><use module=\"B\" mode=\"B1\"/></partition>\
             </region></partitioning>",
        );
        let p = dir.join("incompatible.xml");
        std::fs::write(&p, merged).unwrap();
        let err = check(&p, None).unwrap_err();
        assert!(err.to_string().contains("PC004"), "{err}");

        // Defect 3 — mis-summed reconfiguration time: corrupt the claimed
        // total-frames attribute.
        let open = honest.find("total-frames=\"").expect("claims total") + "total-frames=\"".len();
        let close = honest[open..].find('"').expect("quoted") + open;
        let claimed: u64 = honest[open..close].parse().unwrap();
        let lied = format!("{}{}{}", &honest[..open], claimed + 1, &honest[close..]);
        let p = dir.join("missummed.xml");
        std::fs::write(&p, lied).unwrap();
        let err = check(&p, None).unwrap_err();
        assert!(err.to_string().contains("PC008"), "{err}");

        // Defect 4 — over-area: the honest report cannot fit a tiny device.
        let err = check(&scheme_path, Some(Resources::new(10, 0, 0))).unwrap_err();
        assert!(err.to_string().contains("PC006"), "{err}");

        // JSON mode reports certification machine-readably.
        let out = run(Command::Check {
            design: design_path.to_string_lossy().into_owned(),
            scheme: scheme_path.to_string_lossy().into_owned(),
            target: None,
            library: None,
            pessimistic: false,
            json: true,
        })
        .unwrap();
        assert!(out.contains(r#""certified":true"#), "{out}");
    }

    #[test]
    fn parses_certify_flags() {
        let c = parse_args(&s(&[
            "certify",
            "d.xml",
            "r.xml",
            "--deadline",
            "0.5",
            "--blacklist-depth",
            "2",
            "--safe-config",
            "conf1",
            "--format",
            "json",
        ]))
        .unwrap();
        match c {
            Command::Certify { design, scheme, deadline, blacklist_depth, safe_config, json } => {
                assert_eq!(design, "d.xml");
                assert_eq!(scheme, "r.xml");
                assert_eq!(deadline, Some(0.5));
                assert_eq!(blacklist_depth, Some(2));
                assert_eq!(safe_config.as_deref(), Some("conf1"));
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&s(&["certify", "d.xml"])).is_err());
        assert!(parse_args(&s(&["certify", "d.xml", "r.xml", "--format", "xml"])).is_err());
        assert!(parse_args(&s(&["certify", "d.xml", "r.xml", "--deadline", "-1"])).is_err());
    }

    /// `prpart certify` end-to-end: a saved report earns a transition
    /// certificate (ISSUE acceptance criterion), `--format json` emits
    /// the versioned machine-checkable document, an impossible
    /// `--deadline` is rejected with TC006, and a safe configuration
    /// that depends on a reconfigurable region is rejected with TC007.
    #[test]
    fn certify_emits_certificate_and_rejects_violations() {
        let dir = std::env::temp_dir().join("prpart-cli-certify");
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let scheme_path = dir.join("scheme.xml");
        run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Budget(Resources::new(100_000, 1_000, 1_000)),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: Some(scheme_path.to_string_lossy().into_owned()),
            library: None,
            weights: None,
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        let certify = |deadline: Option<f64>, safe: Option<&str>, json: bool| {
            run(Command::Certify {
                design: design_path.to_string_lossy().into_owned(),
                scheme: scheme_path.to_string_lossy().into_owned(),
                deadline,
                blacklist_depth: None,
                safe_config: safe.map(str::to_owned),
                json,
            })
        };
        let out = certify(None, None, false).unwrap();
        assert!(out.contains("transition certificate"), "{out}");
        let j = certify(None, None, true).unwrap();
        assert!(j.contains(r#""certified":true"#), "{j}");
        assert!(j.contains(r#""version":"#), "{j}");
        assert!(j.contains(r#""worst_bound_nanos":"#), "{j}");

        let err = certify(Some(1e-9), None, false).unwrap_err();
        assert!(err.to_string().contains("TC006"), "{err}");

        // Every abc configuration selects a mode in every module, so any
        // safe configuration depends on a reconfigurable region.
        let err = certify(None, Some("conf1"), false).unwrap_err();
        assert!(err.to_string().contains("TC007"), "{err}");

        let err = certify(None, Some("no-such-config"), false).unwrap_err();
        assert!(err.to_string().contains("unknown configuration"), "{err}");
    }

    #[test]
    fn parses_serve_flags() {
        let c = parse_args(&s(&[
            "serve",
            "d.xml",
            "r.xml",
            "--arrivals",
            "1000",
            "--duration",
            "0.5",
            "--policy",
            "deadline-aware",
            "--seed",
            "7",
            "--queue",
            "8",
            "--fault-rate",
            "0.1",
            "--fault-seed",
            "9",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        match c {
            Command::Serve {
                design,
                scheme,
                arrivals,
                duration_secs,
                policy,
                seed,
                queue_capacity,
                fault_rate,
                fault_seed,
                obs,
            } => {
                assert_eq!(design, "d.xml");
                assert_eq!(scheme, "r.xml");
                assert_eq!(arrivals, 1000.0);
                assert_eq!(duration_secs, 0.5);
                assert_eq!(policy, OverloadPolicy::DeadlineAware);
                assert_eq!(seed, 7);
                assert_eq!(queue_capacity, 8);
                assert_eq!(fault_rate, 0.1);
                assert_eq!(fault_seed, 9);
                assert_eq!(obs.metrics_out.as_deref(), Some("m.json"));
            }
            other => panic!("{other:?}"),
        }
        // Defaults.
        let c = parse_args(&s(&["serve", "d.xml", "r.xml"])).unwrap();
        match c {
            Command::Serve { arrivals, duration_secs, policy, queue_capacity, .. } => {
                assert_eq!(arrivals, 500.0);
                assert_eq!(duration_secs, 0.1);
                assert_eq!(policy, OverloadPolicy::RejectNew);
                assert_eq!(queue_capacity, 16);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&s(&["serve", "d.xml"])).is_err());
        assert!(parse_args(&s(&["serve", "d.xml", "r.xml", "--policy", "bogus"])).is_err());
        assert!(parse_args(&s(&["serve", "d.xml", "r.xml", "--arrivals", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "d.xml", "r.xml", "--queue", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "d.xml", "r.xml", "--fault-rate", "2"])).is_err());
    }

    /// `prpart serve` end-to-end: the replay runs on a virtual clock and
    /// is deterministic — two runs with the same seed produce the same
    /// report text and byte-identical metrics snapshots.
    #[test]
    fn serve_replays_deterministically() {
        let dir = std::env::temp_dir().join("prpart-cli-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let scheme_path = dir.join("scheme.xml");
        run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Budget(Resources::new(100_000, 1_000, 1_000)),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: Some(scheme_path.to_string_lossy().into_owned()),
            library: None,
            weights: None,
            threads: 0,
            resilience: Default::default(),
            obs: Default::default(),
        })
        .unwrap();
        let serve = |metrics: &std::path::Path| {
            run(Command::Serve {
                design: design_path.to_string_lossy().into_owned(),
                scheme: scheme_path.to_string_lossy().into_owned(),
                arrivals: 2000.0,
                duration_secs: 0.02,
                policy: OverloadPolicy::DeadlineAware,
                seed: 42,
                queue_capacity: 8,
                fault_rate: 0.0,
                fault_seed: 0,
                obs: ObsArgs {
                    metrics_out: Some(metrics.to_string_lossy().into_owned()),
                    ..Default::default()
                },
            })
        };
        let m1 = dir.join("serve-1.json");
        let m2 = dir.join("serve-2.json");
        let out1 = serve(&m1).unwrap();
        let out2 = serve(&m2).unwrap();
        assert!(out1.contains("offered"), "{out1}");
        assert!(out1.contains("policy deadline-aware"), "{out1}");
        // The report text differs only in the metrics path suffix.
        let strip = |s: &str| s.lines().filter(|l| !l.contains("metrics written")).count();
        assert_eq!(strip(&out1), strip(&out2));
        assert_eq!(
            out1.lines().take(4).collect::<Vec<_>>(),
            out2.lines().take(4).collect::<Vec<_>>()
        );
        let b1 = std::fs::read(&m1).unwrap();
        let b2 = std::fs::read(&m2).unwrap();
        assert_eq!(b1, b2, "metrics snapshots must be byte-identical across seeded runs");
        assert!(!b1.is_empty());
    }

    #[test]
    fn parses_observability_flags() {
        let c = parse_args(&s(&[
            "partition",
            "d.xml",
            "--auto",
            "--metrics-out",
            "m.json",
            "--profile-out",
            "p.txt",
            "--format",
            "prom",
        ]))
        .unwrap();
        match c {
            Command::Partition { obs, .. } => {
                assert_eq!(obs.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(obs.profile_out.as_deref(), Some("p.txt"));
                assert!(obs.prom);
                assert!(obs.active());
            }
            other => panic!("{other:?}"),
        }
        // Defaults are off: no outputs, JSON format, inactive.
        let c = parse_args(&s(&["flow", "d.xml", "--device", "X", "--out", "o"])).unwrap();
        assert!(matches!(c, Command::Flow { ref obs, .. } if !obs.active() && !obs.prom));
        // On simulate, --profile-out keeps its legacy meaning (transition
        // weights); the span profile rides under --flame-out.
        let c = parse_args(&s(&[
            "simulate",
            "d.xml",
            "--device",
            "X",
            "--profile-out",
            "w.xml",
            "--flame-out",
            "f.txt",
        ]))
        .unwrap();
        match c {
            Command::Simulate { profile_out, obs, .. } => {
                assert_eq!(profile_out.as_deref(), Some("w.xml"));
                assert_eq!(obs.profile_out.as_deref(), Some("f.txt"));
            }
            other => panic!("{other:?}"),
        }
        // The metrics subcommand.
        let c = parse_args(&s(&["metrics", "d.xml", "--device", "X", "--format", "prom"])).unwrap();
        assert!(matches!(c, Command::Metrics { prom: true, .. }));
        let c = parse_args(&s(&["metrics", "d.xml", "--budget", "1,2,3"])).unwrap();
        assert!(matches!(c, Command::Metrics { prom: false, .. }));
        assert!(parse_args(&s(&["metrics", "d.xml"])).is_err(), "needs a target");
        assert!(parse_args(&s(&["metrics", "--device", "X"])).is_err(), "needs a design");
        // Unknown formats are clean parse errors.
        assert!(parse_args(&s(&["partition", "d.xml", "--auto", "--format", "xml"])).is_err());
        assert!(parse_args(&s(&["metrics", "d.xml", "--device", "X", "--format", "x"])).is_err());
    }

    #[test]
    fn partition_exports_metrics_and_profile() {
        let dir = std::env::temp_dir().join(format!("prpart-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let metrics_path = dir.join("metrics.json");
        let profile_path = dir.join("profile.folded");
        let out = run(Command::Partition {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Budget(Resources::new(100_000, 1_000, 1_000)),
            strategy: None,
            no_static: false,
            pessimistic: false,
            xml_out: None,
            library: None,
            weights: None,
            threads: 1,
            resilience: Default::default(),
            obs: ObsArgs {
                metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
                prom: false,
                profile_out: Some(profile_path.to_string_lossy().into_owned()),
            },
        })
        .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        assert!(out.contains("span profile written to"), "{out}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains(r#""version": 1"#), "{json}");
        assert!(json.contains("search.candidate_sets_explored"), "{json}");
        assert!(json.contains("search.greedy.states_evaluated"), "{json}");
        // Every line of the collapsed profile is `path nanos`, rooted at
        // the search span.
        let profile = std::fs::read_to_string(&profile_path).unwrap();
        assert!(profile.lines().any(|l| l.starts_with("search ")), "{profile}");
        for line in profile.lines() {
            let (_, nanos) = line.rsplit_once(' ').expect("path nanos");
            nanos.parse::<u64>().expect("numeric nanos");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_command_prints_snapshot_in_both_formats() {
        let dir = std::env::temp_dir().join(format!("prpart-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let cmd = |prom| Command::Metrics {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Budget(Resources::new(100_000, 1_000, 1_000)),
            threads: 1,
            prom,
        };
        let json = run(cmd(false)).unwrap();
        assert!(json.contains(r#""version": 1"#), "{json}");
        assert!(json.contains(r#""registrations""#), "{json}");
        let prom = run(cmd(true)).unwrap();
        assert!(prom.contains("# TYPE prpart_search_candidate_sets_explored counter"), "{prom}");
        assert!(prom.contains("prpart_search_unit_nanos_bucket"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_with_faults_exports_runtime_metrics() {
        let dir = std::env::temp_dir().join(format!("prpart-cli-simobs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let design =
            prpart_design::corpus::video_receiver(prpart_design::corpus::VideoConfigSet::Original);
        let design_path = dir.join("video.xml");
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let metrics_path = dir.join("metrics.json");
        let flame_path = dir.join("sim.folded");
        let out = run(Command::Simulate {
            design: design_path.to_string_lossy().into_owned(),
            target: Target::Device("SX70T".into()),
            walks: 4,
            len: 16,
            profile_out: None,
            fault_rate: 0.2,
            fault_seed: 42,
            max_retries: Some(4),
            safe_config: None,
            threads: 1,
            obs: ObsArgs {
                metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
                prom: false,
                profile_out: Some(flame_path.to_string_lossy().into_owned()),
            },
        })
        .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains("runtime.walks"), "{json}");
        assert!(json.contains("runtime.faults.injected"), "{json}");
        assert!(json.contains("runtime.recovery.retries_to_resolve"), "{json}");
        let flame = std::fs::read_to_string(&flame_path).unwrap();
        assert!(flame.lines().any(|l| l.starts_with("simulate ")), "{flame}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_floorplan_variants() {
        let c = parse_args(&s(&["floorplan", "d.xml", "--device", "SX70T"])).unwrap();
        match c {
            Command::Floorplan {
                target: Target::Device(name),
                threads,
                max_aspect,
                render,
                first_fit,
                max_retries,
                ..
            } => {
                assert_eq!(name, "SX70T");
                assert_eq!(threads, 0);
                assert_eq!(max_aspect, None);
                assert!(!render && !first_fit);
                assert_eq!(max_retries, 3);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&s(&[
            "floorplan",
            "d.xml",
            "--budget",
            "100,2,3",
            "--threads",
            "4",
            "--max-aspect",
            "2.5",
            "--obstacles",
            "ob.txt",
            "--render",
            "--first-fit",
            "--max-retries",
            "1",
        ]))
        .unwrap();
        match c {
            Command::Floorplan {
                target: Target::Budget(b),
                threads,
                max_aspect,
                obstacles,
                render,
                first_fit,
                max_retries,
                ..
            } => {
                assert_eq!(b, Resources::new(100, 2, 3));
                assert_eq!(threads, 4);
                assert_eq!(max_aspect, Some(2.5));
                assert_eq!(obstacles.as_deref(), Some("ob.txt"));
                assert!(render && first_fit);
                assert_eq!(max_retries, 1);
            }
            other => panic!("{other:?}"),
        }
        // --auto makes no sense for a floorplan; targets are mandatory.
        assert!(parse_args(&s(&["floorplan", "d.xml", "--auto"])).is_err());
        assert!(parse_args(&s(&["floorplan", "d.xml"])).is_err());
        assert!(parse_args(&s(&["floorplan", "--device", "SX70T"])).is_err());
        // Aspect ratios below 1 (or non-finite) are rejected at parse.
        assert!(parse_args(&s(&["floorplan", "d.xml", "--auto", "--max-aspect", "0.5"])).is_err());
        assert!(parse_args(&s(&["floorplan", "d.xml", "--auto", "--max-aspect", "nan"])).is_err());
    }

    #[test]
    fn parses_obstacle_files() {
        let text = "# hard macros\n0..2 0..4\n\n 3..5  1..2  # PCIe block\n";
        let obstacles = parse_obstacles(text).unwrap();
        assert_eq!(
            obstacles,
            vec![Obstacle { cols: 0..2, rows: 0..4 }, Obstacle { cols: 3..5, rows: 1..2 }]
        );
        assert!(parse_obstacles("").unwrap().is_empty());
        // Empty ranges, missing fields and trailing junk are rejected
        // with the offending line number.
        assert!(parse_obstacles("2..2 0..4").unwrap_err().contains("line 1"));
        assert!(parse_obstacles("0..2").unwrap_err().contains("line 1"));
        assert!(parse_obstacles("0..2 0..4 9").unwrap_err().contains("line 1"));
        assert!(parse_obstacles("ok..2 0..4").unwrap_err().contains("line 1"));
        assert!(parse_obstacles("0..2 0..4\n5..4 0..1").unwrap_err().contains("line 2"));
    }

    #[test]
    fn floorplan_command_is_deterministic_across_threads() {
        let dir = std::env::temp_dir().join("prpart-cli-floorplan");
        std::fs::create_dir_all(&dir).unwrap();
        let design = prpart_design::corpus::abc_example();
        let design_path = dir.join("abc.xml").to_string_lossy().into_owned();
        std::fs::write(&design_path, prpart_xmlio::render_design(&design)).unwrap();
        let obstacles_path = dir.join("obstacles.txt").to_string_lossy().into_owned();
        std::fs::write(&obstacles_path, "0..1 0..2 # corner macro\n").unwrap();
        let base = |threads: usize| Command::Floorplan {
            design: design_path.clone(),
            target: Target::Device("SX70T".into()),
            threads,
            max_aspect: Some(8.0),
            obstacles: Some(obstacles_path.clone()),
            render: true,
            first_fit: false,
            max_retries: 3,
            library: None,
            obs: Default::default(),
        };
        let serial = run(base(1)).unwrap();
        assert!(serial.contains("placements:"), "{serial}");
        assert!(serial.contains("total waste"), "{serial}");
        assert!(serial.contains("engine candidates"), "{serial}");
        assert!(serial.contains("obstacles 1"), "{serial}");
        // The rendered tile map marks the keep-out.
        assert!(serial.contains('#'), "{serial}");
        let threaded = run(base(4)).unwrap();
        assert_eq!(serial, threaded);
        let auto = run(base(0)).unwrap();
        assert_eq!(serial, auto);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_writes_designs() {
        let dir = std::env::temp_dir().join("prpart-cli-gen");
        let _ = std::fs::remove_dir_all(&dir);
        let out =
            run(Command::Generate { count: 3, seed: 5, out: dir.to_string_lossy().into_owned() })
                .unwrap();
        assert!(out.contains("wrote 3 designs"));
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 3);
        // Generated designs parse back.
        let text = std::fs::read_to_string(dir.join("design_0000.xml")).unwrap();
        prpart_xmlio::parse_design(&text).unwrap();
    }
}
