//! `prpart` binary: thin shim over [`prpart_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match prpart_cli::parse_args(&args).and_then(prpart_cli::run) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
