//! `prpart` binary: thin shim over [`prpart_cli`], plus process-level
//! Ctrl-C wiring. The library stays `forbid(unsafe_code)`; the one line of
//! FFI needed to install a signal handler lives here in the binary.

use prpart_cli::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT → sticky flag. The handler itself only stores an atomic (the
/// async-signal-safe subset); a watcher thread translates the flag into a
/// cooperative [`CancelToken`] cancellation so an interrupted sweep still
/// reduces its completed units and prints a certified best-so-far report.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sigint {
    use super::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler; returns `false` if the OS refused it.
    pub fn install() -> bool {
        const SIG_ERR: usize = usize::MAX;
        let handler = on_sigint as extern "C" fn(i32) as usize;
        let previous = unsafe { signal(SIGINT, handler) };
        previous != SIG_ERR
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() -> bool {
        false
    }

    pub fn interrupted() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cancel = if sigint::install() {
        let token = CancelToken::new();
        let watcher = token.clone();
        std::thread::spawn(move || {
            while !sigint::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            watcher.cancel();
        });
        Some(token)
    } else {
        None
    };
    match prpart_cli::parse_args(&args).and_then(|cmd| prpart_cli::run_with_cancel(cmd, cancel)) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
