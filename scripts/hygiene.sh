#!/usr/bin/env bash
# Source hygiene: hold the line on `unwrap()` / `expect(` / `panic!(`
# in non-test code.
#
# Counts occurrences across every tracked `.rs` file, truncating each
# file at its first `#[cfg(test)]` (the repo convention keeps unit tests
# at the bottom of the file) and skipping dedicated test trees
# (`tests/`, `benches/`). The count is compared against the baseline
# below: anything *above* it fails CI, so new panicking call sites
# cannot land silently. When legitimate refactoring lowers the count,
# ratchet the baseline down to match.
#
# Usage: scripts/hygiene.sh [--print]   (--print lists per-file counts)

set -euo pipefail
cd "$(dirname "$0")/.."

# The ratchet. Lower is better; raising it needs a review that agrees
# the new call site genuinely cannot fail.
BASELINE=90

print_mode=false
[ "${1:-}" = "--print" ] && print_mode=true

total=0
while IFS= read -r f; do
    case "$f" in
        tests/*|*/tests/*|*/benches/*) continue ;;
    esac
    # Truncate at the first `#[cfg(test)]`, then count panicking calls.
    n=$(awk '/^[[:space:]]*#\[cfg\(test\)\]/ { exit } { print }' "$f" \
        | grep -c -E '\.unwrap\(\)|\.expect\(|panic!\(' || true)
    if [ "$n" -gt 0 ]; then
        total=$((total + n))
        if $print_mode; then
            printf '%5d %s\n' "$n" "$f"
        fi
    fi
done < <(git ls-files '*.rs')

echo "hygiene: $total panicking call site(s) in non-test code (baseline $BASELINE)"
if [ "$total" -gt "$BASELINE" ]; then
    echo "FAIL: new unwrap()/expect()/panic!() in non-test code." >&2
    echo "Run 'scripts/hygiene.sh --print' to locate them; prefer typed" >&2
    echo "errors, or ratchet BASELINE only with a review that agrees the" >&2
    echo "call site cannot fail." >&2
    exit 1
fi
